(* Open-addressed flow table: linear probing, no tombstones (deletion
   backward-shifts the displaced run), power-of-two capacity, resize at
   3/4 load.  Keys are the demux tuple split across two int arrays —
   [ka] = lport lsl 16 lor rport (>= 0, so -1 marks an empty slot) and
   [kb] = the remote address bits — with the flow hash stored alongside
   so probes compare one int before touching the key words and deletion
   can recompute home slots without rehashing. *)

type 'v t = {
  mutable ka : int array;  (* -1 = empty *)
  mutable kb : int array;
  mutable hash : int array;
  mutable vals : 'v option array;
  mutable mask : int;
  mutable len : int;
}

let create ?(initial = 16) () =
  let cap = ref 8 in
  while !cap < initial do
    cap := !cap * 2
  done;
  let cap = !cap in
  {
    ka = Array.make cap (-1);
    kb = Array.make cap 0;
    hash = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    len = 0;
  }

let length t = t.len

let find t ~hash ~ka ~kb =
  let mask = t.mask in
  let i = ref (hash land mask) in
  let r = ref None in
  let continue = ref true in
  while !continue do
    let i' = !i in
    if t.ka.(i') = -1 then continue := false
    else begin
      if t.hash.(i') = hash && t.ka.(i') = ka && t.kb.(i') = kb then begin
        r := t.vals.(i');
        continue := false
      end
      else i := (i' + 1) land mask
    end
  done;
  !r

let rec insert t ~hash ~ka ~kb v =
  if 4 * (t.len + 1) > 3 * (t.mask + 1) then grow t;
  let mask = t.mask in
  let i = ref (hash land mask) in
  let continue = ref true in
  while !continue do
    let i' = !i in
    if t.ka.(i') = -1 then begin
      t.ka.(i') <- ka;
      t.kb.(i') <- kb;
      t.hash.(i') <- hash;
      t.vals.(i') <- Some v;
      t.len <- t.len + 1;
      continue := false
    end
    else if t.hash.(i') = hash && t.ka.(i') = ka && t.kb.(i') = kb then begin
      t.vals.(i') <- Some v;
      continue := false
    end
    else i := (i' + 1) land mask
  done

and grow t =
  let oka = t.ka and okb = t.kb and oh = t.hash and ov = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.ka <- Array.make cap (-1);
  t.kb <- Array.make cap 0;
  t.hash <- Array.make cap 0;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.len <- 0;
  Array.iteri
    (fun i k ->
      if k <> -1 then
        match ov.(i) with
        | Some v -> insert t ~hash:oh.(i) ~ka:k ~kb:okb.(i) v
        | None -> ())
    oka

let add t ~hash ~ka ~kb v = insert t ~hash ~ka ~kb v

let remove t ~hash ~ka ~kb =
  let mask = t.mask in
  let i = ref (hash land mask) in
  let found = ref false in
  let probing = ref true in
  while !probing do
    let i' = !i in
    if t.ka.(i') = -1 then probing := false
    else if t.hash.(i') = hash && t.ka.(i') = ka && t.kb.(i') = kb then begin
      found := true;
      probing := false
    end
    else i := (i' + 1) land mask
  done;
  if !found then begin
    t.len <- t.len - 1;
    (* Backward-shift the probe run so no tombstone is needed: an entry
       at [j] may fill the hole at [i] iff its home slot lies outside
       the cyclic interval (i, j]. *)
    let hole = ref !i in
    let j = ref !i in
    let shifting = ref true in
    while !shifting do
      j := (!j + 1) land mask;
      let j' = !j in
      if t.ka.(j') = -1 then shifting := false
      else begin
        let home = t.hash.(j') land mask in
        if (j' - home) land mask >= (j' - !hole) land mask then begin
          t.ka.(!hole) <- t.ka.(j');
          t.kb.(!hole) <- t.kb.(j');
          t.hash.(!hole) <- t.hash.(j');
          t.vals.(!hole) <- t.vals.(j');
          hole := j'
        end
      end
    done;
    t.ka.(!hole) <- -1;
    t.kb.(!hole) <- 0;
    t.vals.(!hole) <- None
  end

let iter f t =
  Array.iteri
    (fun i k ->
      if k <> -1 then match t.vals.(i) with Some v -> f v | None -> ())
    t.ka

let capacity t = t.mask + 1
