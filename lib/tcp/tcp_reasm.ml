type seg = { seq : Tcp_seq.t; len : int; chain : Mbuf.t }

type t = { mutable segs : seg list (* sorted by seq *) }

let create () = { segs = [] }

let is_empty t = t.segs = []
let bytes_held t = List.fold_left (fun a s -> a + s.len) 0 t.segs

let insert t ~rcv_nxt ~seq chain =
  let len = Mbuf.chain_len chain in
  (* Trim anything at or below rcv_nxt. *)
  let behind = Tcp_seq.diff rcv_nxt seq in
  let seq, len, chain =
    if behind >= len then begin
      Mbuf.free chain;
      (seq, 0, None)
    end
    else if behind > 0 then begin
      Mbuf.adj_head chain behind;
      (Tcp_seq.add seq behind, len - behind, Some chain)
    end
    else (seq, len, Some chain)
  in
  match chain with
  | None -> ()
  | Some chain ->
      (* Trim against queued segments: drop the parts of the new segment
         already present. *)
      let rec place segs seq len chain =
        match segs with
        | [] -> [ { seq; len; chain } ]
        | s :: rest ->
            if Tcp_seq.ge seq (Tcp_seq.add s.seq s.len) then
              (* new segment entirely after s *)
              s :: place rest seq len chain
            else if Tcp_seq.ge seq s.seq then begin
              (* new starts inside s: trim its prefix *)
              let overlap = Tcp_seq.diff (Tcp_seq.add s.seq s.len) seq in
              if overlap >= len then begin
                Mbuf.free chain;
                s :: rest
              end
              else begin
                Mbuf.adj_head chain overlap;
                s
                :: place rest
                     (Tcp_seq.add seq overlap)
                     (len - overlap) chain
              end
            end
            else begin
              (* new starts before s *)
              let gap = Tcp_seq.diff s.seq seq in
              if len <= gap then { seq; len; chain } :: s :: rest
              else begin
                let new_end = Tcp_seq.add seq len in
                let s_end = Tcp_seq.add s.seq s.len in
                if Tcp_seq.le new_end s_end then begin
                  (* tail overlaps s: keep only the part before s *)
                  Mbuf.adj_tail chain (len - gap);
                  { seq; len = gap; chain } :: s :: rest
                end
                else begin
                  (* spans s entirely (a retransmission bridging it):
                     keep the head before s, and re-place the part past
                     s's end against the rest of the queue *)
                  let head, tail = Mbuf.split chain gap in
                  Mbuf.adj_head tail s.len;
                  { seq; len = gap; chain = head }
                  :: s
                  :: place rest s_end (Tcp_seq.diff new_end s_end) tail
                end
              end
            end
      in
      if len > 0 then t.segs <- place t.segs seq len chain
      else Mbuf.free chain

let take t ~rcv_nxt =
  let rec go segs nxt acc =
    match segs with
    | s :: rest when Tcp_seq.diff s.seq nxt = 0 ->
        go rest (Tcp_seq.add nxt s.len) ((s.chain, s.len) :: acc)
    | rest -> (List.rev acc, rest)
  in
  let taken, rest = go t.segs rcv_nxt [] in
  t.segs <- rest;
  taken
