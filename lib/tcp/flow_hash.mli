(** RSS flow hash: Toeplitz over the (raddr, lport, rport) tuple.

    Both the TCP demux ({!Flowtab} bucket + shard selection) and the CAB
    driver's interrupt-steering classifier hash the same tuple with the
    same fixed key, so a flow's segments land on the shard that owns its
    pcb by construction. *)

val hash : raddr:Inaddr.t -> lport:int -> rport:int -> int
(** 32-bit non-negative Toeplitz hash; allocation-free. *)

val shard : count:int -> int -> int
(** [shard ~count h] maps a hash onto one of [count] shards. *)

val addr_bits : Inaddr.t -> int
(** The address as a non-negative int (key material for {!Flowtab}). *)
