type mac = Fifo | Logical_channels

type frame = { dst : int; payload : Bytes.t }

type input = {
  (* FIFO mode uses [fifo]; logical-channel mode uses [channels] with
     round-robin scanning order [rr]. *)
  fifo : frame Queue.t;
  channels : (int, frame Queue.t) Hashtbl.t;
  mutable rr : int list;  (* destinations in round-robin order *)
  mutable busy : bool;
  mutable queued : int;
}

type t = {
  sim : Sim.t;
  nports : int;
  rate : float;
  latency : Simtime.t;
  discipline : mac;
  inputs : input array;
  mutable out_busy : bool array;
  out_busy_time : Simtime.t array;
  rx : (Bytes.t -> unit) array;
  (* Per-output-port delay line for the crossbar→station latency hop:
     [out_busy] serializes each output, so arrival times per port are
     non-decreasing and one reusable timer per port replaces a closure
     per frame. *)
  pipes : (Simtime.t * Bytes.t) Queue.t array;
  dtimers : Sim.handle array;
  mutable frames : int;
  mutable bytes : int;
}

let arrive t dst =
  match Queue.take_opt t.pipes.(dst) with
  | None -> ()
  | Some (_, payload) ->
      t.rx.(dst) payload;
      (match Queue.peek_opt t.pipes.(dst) with
      | Some (due, _) -> Sim.rearm_at t.sim t.dtimers.(dst) due
      | None -> ())

let create ~sim ~ports ?(rate = Hippi_link.line_rate)
    ?(latency = Simtime.us 1.) discipline =
  if ports <= 0 then invalid_arg "Hippi_switch.create: ports";
  let t =
  {
    sim;
    nports = ports;
    rate;
    latency;
    discipline;
    inputs =
      Array.init ports (fun _ ->
          {
            fifo = Queue.create ();
            channels = Hashtbl.create 8;
            rr = [];
            busy = false;
            queued = 0;
          });
    out_busy = Array.make ports false;
    out_busy_time = Array.make ports 0;
    rx = Array.make ports (fun _ -> ());
    pipes = Array.init ports (fun _ -> Queue.create ());
    dtimers = Array.init ports (fun _ -> Sim.timer sim ignore);
    frames = 0;
    bytes = 0;
  }
  in
  Array.iteri
    (fun dst tm -> Sim.set_fn tm (fun () -> arrive t dst))
    t.dtimers;
  t

let ports t = t.nports
let mac t = t.discipline

let attach t ~port f =
  if port < 0 || port >= t.nports then invalid_arg "Hippi_switch.attach: port";
  t.rx.(port) <- f

(* Pick the frame the input would transmit next, honouring the MAC
   discipline.  Returns the frame and a removal thunk without dequeuing, so
   the caller can first check the output port. *)
let candidate t input =
  match t.discipline with
  | Fifo -> (
      match Queue.peek_opt input.fifo with
      | None -> None
      | Some f ->
          if t.out_busy.(f.dst) then None
          else Some (f, fun () -> ignore (Queue.pop input.fifo)))
  | Logical_channels ->
      (* Scan destinations round-robin; take the first head frame whose
         output is free. *)
      let rec scan before = function
        | [] -> None
        | d :: rest -> (
            match Hashtbl.find_opt input.channels d with
            | None -> scan (d :: before) rest
            | Some q -> (
                match Queue.peek_opt q with
                | None -> scan (d :: before) rest
                | Some f ->
                    if t.out_busy.(d) then scan (d :: before) rest
                    else
                      Some
                        ( f,
                          fun () ->
                            ignore (Queue.pop q);
                            (* Move [d] to the back for fairness. *)
                            input.rr <-
                              List.rev_append before rest @ [ d ] )))
      in
      scan [] input.rr

let rec try_start t i =
  let input = t.inputs.(i) in
  if not input.busy then
    match candidate t input with
    | None -> ()
    | Some (f, remove) ->
        remove ();
        input.queued <- input.queued - 1;
        input.busy <- true;
        t.out_busy.(f.dst) <- true;
        let ser =
          Simtime.of_bytes_at_rate ~bytes_per_s:t.rate
            (Bytes.length f.payload)
        in
        ignore
          (Sim.after t.sim ser (fun () ->
               t.out_busy_time.(f.dst) <- t.out_busy_time.(f.dst) + ser;
               input.busy <- false;
               t.out_busy.(f.dst) <- false;
               t.frames <- t.frames + 1;
               t.bytes <- t.bytes + Bytes.length f.payload;
               let dst = f.dst in
               let due = Simtime.add (Sim.now t.sim) t.latency in
               Queue.push (due, f.payload) t.pipes.(dst);
               if not (Sim.armed t.dtimers.(dst)) then
                 Sim.rearm_at t.sim t.dtimers.(dst) due;
               (* The freed output may unblock any input; the freed input
                  may have more queued. *)
               for j = 0 to t.nports - 1 do
                 try_start t j
               done))

let submit t ~src ~dst payload =
  if src < 0 || src >= t.nports || dst < 0 || dst >= t.nports then
    invalid_arg "Hippi_switch.submit: port out of range";
  let input = t.inputs.(src) in
  (match t.discipline with
  | Fifo -> Queue.push { dst; payload } input.fifo
  | Logical_channels ->
      let q =
        match Hashtbl.find_opt input.channels dst with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add input.channels dst q;
            input.rr <- input.rr @ [ dst ];
            q
      in
      Queue.push { dst; payload } q);
  input.queued <- input.queued + 1;
  try_start t src

let input_queue_len t ~port = t.inputs.(port).queued
let delivered_frames t = t.frames
let delivered_bytes t = t.bytes
let output_busy_time t ~port = t.out_busy_time.(port)

let utilization t elapsed =
  if elapsed <= 0 then 0.
  else
    let total = Array.fold_left ( + ) 0 t.out_busy_time in
    float_of_int total /. float_of_int (elapsed * t.nports)
