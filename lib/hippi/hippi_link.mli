(** Point-to-point HIPPI link.

    Full duplex: each direction is an independently serialized resource at
    the line rate (100 MByte/s for HIPPI, §2.1).  Frames are delivered to
    the far endpoint's receive callback after serialization plus
    propagation latency. *)

type t

val line_rate : float
(** 100e6 bytes/second. *)

val create :
  sim:Sim.t -> ?rate:float -> ?latency:Simtime.t -> unit -> t
(** [rate] defaults to [line_rate]; [latency] to 1 us. *)

type side = A | B

val set_rx : t -> side -> (Bytes.t -> unit) -> unit
val send : t -> from:side -> Bytes.t -> unit

val bytes_carried : t -> int
val busy_time : t -> side -> Simtime.t
(** Serialization time consumed in the direction *out of* the given side. *)

(** {1 Fault injection}

    Two wire fault sites are consulted as each frame reaches the far end:

    - ["wire.corrupt"] (via {!Fault.fire_at} over the frame length): one
      byte of the frame is XORed with [0x40].  The receive checksum
      engine — or the host-verified header prefix — detects the damage;
      the packet is dropped and TCP retransmission heals the stream.
    - ["wire.drop"]: the frame silently never arrives (its buffer is
      recycled through {!Bufpool.shared}). *)

val frames_corrupted : t -> int
val frames_dropped : t -> int
