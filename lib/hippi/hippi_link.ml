let line_rate = 100e6

type side = A | B

(* Each direction is a serialization resource feeding a delay line: a
   FIFO of (arrival time, frame) drained by one reusable timer.  Frames
   enter at serialization completion and arrive [latency] later;
   arrival times are non-decreasing (the resource serializes), so the
   head of the FIFO is always the next arrival and one timer per
   direction replaces a per-frame closure + handle. *)
type dir = {
  res : Resource.t;
  pipe : (Simtime.t * Bytes.t) Queue.t;
  timer : Sim.handle;
}

type t = {
  sim : Sim.t;
  rate : float;
  latency : Simtime.t;
  a2b : dir;
  b2a : dir;
  mutable rx_a : Bytes.t -> unit;
  mutable rx_b : Bytes.t -> unit;
  mutable carried : int;
  mutable corrupted : int;
  mutable dropped : int;
}

(* Wire faults happen after serialization, at the instant the frame
   reaches the far end.  A corrupted frame has one byte XORed — the
   receiving engine's checksum (or the host-verified header prefix)
   catches it and TCP retransmission heals it.  A dropped frame never
   arrives; its buffer is recycled so the soak leak check stays honest
   about what the wire ate. *)
let deliver t rx frame =
  if Fault.fire "wire.drop" then begin
    t.dropped <- t.dropped + 1;
    Bufpool.put Bufpool.shared frame
  end
  else begin
    (match Fault.fire_at "wire.corrupt" ~bound:(Bytes.length frame) with
    | Some i ->
        t.corrupted <- t.corrupted + 1;
        Bytes.set frame i
          (Char.chr (Char.code (Bytes.get frame i) lxor 0x40))
    | None -> ());
    rx frame
  end

let arrive t dir rx =
  match Queue.take_opt dir.pipe with
  | None -> ()
  | Some (_, frame) ->
      deliver t rx frame;
      (match Queue.peek_opt dir.pipe with
      | Some (due, _) -> Sim.rearm_at t.sim dir.timer due
      | None -> ())

let create ~sim ?(rate = line_rate) ?(latency = Simtime.us 1.) () =
  let mk name =
    { res = Resource.create ~sim ~name;
      pipe = Queue.create ();
      timer = Sim.timer sim ignore }
  in
  let t =
    {
      sim;
      rate;
      latency;
      a2b = mk "link.a2b";
      b2a = mk "link.b2a";
      rx_a = (fun _ -> invalid_arg "Hippi_link: no rx on side A");
      rx_b = (fun _ -> invalid_arg "Hippi_link: no rx on side B");
      carried = 0;
      corrupted = 0;
      dropped = 0;
    }
  in
  (* The receivers are installed later ([set_rx]), so the arrival
     callbacks read them through [t] at fire time. *)
  Sim.set_fn t.a2b.timer (fun () -> arrive t t.a2b (fun f -> t.rx_b f));
  Sim.set_fn t.b2a.timer (fun () -> arrive t t.b2a (fun f -> t.rx_a f));
  t

let set_rx t side f =
  match side with A -> t.rx_a <- f | B -> t.rx_b <- f

let send t ~from frame =
  let dir = match from with A -> t.a2b | B -> t.b2a in
  let ser =
    Simtime.of_bytes_at_rate ~bytes_per_s:t.rate (Bytes.length frame)
  in
  Resource.acquire dir.res ser (fun () ->
      t.carried <- t.carried + Bytes.length frame;
      let due = Simtime.add (Sim.now t.sim) t.latency in
      Queue.push (due, frame) dir.pipe;
      if not (Sim.armed dir.timer) then Sim.rearm_at t.sim dir.timer due)

let bytes_carried t = t.carried
let frames_corrupted t = t.corrupted
let frames_dropped t = t.dropped

let busy_time t side =
  match side with
  | A -> Resource.busy_time t.a2b.res
  | B -> Resource.busy_time t.b2a.res
