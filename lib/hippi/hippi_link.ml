let line_rate = 100e6

type side = A | B

type t = {
  sim : Sim.t;
  rate : float;
  latency : Simtime.t;
  a2b : Resource.t;
  b2a : Resource.t;
  mutable rx_a : Bytes.t -> unit;
  mutable rx_b : Bytes.t -> unit;
  mutable carried : int;
  mutable corrupted : int;
  mutable dropped : int;
}

let create ~sim ?(rate = line_rate) ?(latency = Simtime.us 1.) () =
  {
    sim;
    rate;
    latency;
    a2b = Resource.create ~sim ~name:"link.a2b";
    b2a = Resource.create ~sim ~name:"link.b2a";
    rx_a = (fun _ -> invalid_arg "Hippi_link: no rx on side A");
    rx_b = (fun _ -> invalid_arg "Hippi_link: no rx on side B");
    carried = 0;
    corrupted = 0;
    dropped = 0;
  }

let set_rx t side f =
  match side with A -> t.rx_a <- f | B -> t.rx_b <- f

let send t ~from frame =
  let dir, rx =
    match from with A -> (t.a2b, fun f -> t.rx_b f) | B -> (t.b2a, fun f -> t.rx_a f)
  in
  let deliver () =
    (* Wire faults happen after serialization, at the instant the frame
       reaches the far end.  A corrupted frame has one byte XORed — the
       receiving engine's checksum (or the host-verified header prefix)
       catches it and TCP retransmission heals it.  A dropped frame never
       arrives; its buffer is recycled so the soak leak check stays honest
       about what the wire ate. *)
    if Fault.fire "wire.drop" then begin
      t.dropped <- t.dropped + 1;
      Bufpool.put Bufpool.shared frame
    end
    else begin
      (match Fault.fire_at "wire.corrupt" ~bound:(Bytes.length frame) with
      | Some i ->
          t.corrupted <- t.corrupted + 1;
          Bytes.set frame i
            (Char.chr (Char.code (Bytes.get frame i) lxor 0x40))
      | None -> ());
      rx frame
    end
  in
  let ser =
    Simtime.of_bytes_at_rate ~bytes_per_s:t.rate (Bytes.length frame)
  in
  Resource.acquire dir ser (fun () ->
      t.carried <- t.carried + Bytes.length frame;
      ignore (Sim.after t.sim t.latency deliver))

let bytes_carried t = t.carried
let frames_corrupted t = t.corrupted
let frames_dropped t = t.dropped

let busy_time t side =
  match side with A -> Resource.busy_time t.a2b | B -> Resource.busy_time t.b2a
