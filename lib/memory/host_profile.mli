(** Host cost profiles.

    Each profile captures the per-byte, per-page and per-packet costs of one
    of the paper's measurement platforms.  The alpha400 numbers are taken
    directly from §7.3 of the paper (copy 350 Mbit/s without locality,
    checksum read 630 Mbit/s, 300 us per-packet overhead, Table 2 VM costs);
    the remaining knobs (interrupt entry, syscall entry, DMA posting,
    effective TurboChannel bandwidth) are calibrated so the measured curves
    of Figure 5 are matched in shape.  alpha300lx is the "about half as
    powerful" Alpha 3000/300LX of Figure 6. *)

type t = {
  name : string;
  page_size : int;  (** host VM page size (8192 on Alpha) *)
  (* --- per-byte costs (bytes/second) --- *)
  copy_bw_nolocal : float;  (** memory-memory copy, cache-cold *)
  copy_bw_cached : float;  (** memory-memory copy, working set in cache *)
  read_bw_nolocal : float;  (** checksum read pass, cache-cold *)
  read_bw_cached : float;
  cache_bytes : int;  (** board-level cache size *)
  (* --- per-packet / per-call costs (microseconds) --- *)
  per_packet_us : float;  (** protocol send/receive path per packet *)
  ack_us : float;  (** processing one ACK segment *)
  intr_us : float;  (** interrupt entry/exit *)
  syscall_us : float;  (** read/write system-call entry *)
  sb_wait_us : float;  (** blocking + wakeup through the socket buffer *)
  (* --- Table 2 VM costs (microseconds, base + per-page) --- *)
  pin_base_us : float;
  pin_page_us : float;
  unpin_base_us : float;
  unpin_page_us : float;
  map_base_us : float;
  map_page_us : float;
  (* --- IO bus (TurboChannel through the TcIA) --- *)
  bus_bw : float;  (** effective DMA bytes/second across the bus *)
  dma_post_us : float;  (** host cost to post one SDMA request *)
  dma_engine_us : float;  (** CAB-side fixed cost per SDMA transfer *)
}

val alpha400 : t
(** DEC Alpha 3000/400 (Figure 5). *)

val alpha300lx : t
(** DEC Alpha 3000/300LX, 125 MHz, half-speed TurboChannel (Figure 6). *)

val smp : t
(** Hypothetical multiprocessor for the RSS-sharding experiments:
    alpha400 per-CPU costs on a fast (non-bottleneck) I/O system, so
    per-packet CPU work limits throughput and sharding scales. *)

val by_name : string -> t option
val all : t list

val pp : Format.formatter -> t -> unit
