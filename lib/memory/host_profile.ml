type t = {
  name : string;
  page_size : int;
  copy_bw_nolocal : float;
  copy_bw_cached : float;
  read_bw_nolocal : float;
  read_bw_cached : float;
  cache_bytes : int;
  per_packet_us : float;
  ack_us : float;
  intr_us : float;
  syscall_us : float;
  sb_wait_us : float;
  pin_base_us : float;
  pin_page_us : float;
  unpin_base_us : float;
  unpin_page_us : float;
  map_base_us : float;
  map_page_us : float;
  bus_bw : float;
  dma_post_us : float;
  dma_engine_us : float;
}

let mbit_per_s m = m *. 1e6 /. 8.

let alpha400 =
  {
    name = "alpha400";
    page_size = Page.host_page_size;
    (* §7.3: "Copies of a 1 MByte (no locality) run at 350 Mbit/second,
       while a read of a 512 KByte region runs at 630 Mbit/second". *)
    copy_bw_nolocal = mbit_per_s 350.;
    copy_bw_cached = mbit_per_s 700.;
    read_bw_nolocal = mbit_per_s 630.;
    read_bw_cached = mbit_per_s 1260.;
    cache_bytes = 512 * 1024;
    (* §7.3: "The per-packet overhead was measured at about 300
       microsecond per packet." *)
    per_packet_us = 300.;
    ack_us = 80.;
    intr_us = 15.;
    syscall_us = 25.;
    sb_wait_us = 40.;
    (* Table 2, microseconds. *)
    pin_base_us = 35.;
    pin_page_us = 29.;
    unpin_base_us = 48.;
    unpin_page_us = 3.9;
    map_base_us = 6.;
    map_page_us = 4.5;
    (* §7: microcode + TcIA limit throughput to well under the 300 Mbit/s
       design point; the effective DMA rate is calibrated so raw-HIPPI
       throughput saturates around 135-140 Mbit/s as in Figure 5(a). *)
    bus_bw = 17.4e6;
    dma_post_us = 20.;
    dma_engine_us = 60.;
  }

let alpha300lx =
  {
    name = "alpha300lx";
    page_size = Page.host_page_size;
    (* "This system is only about half as powerful as the Alpha
       3000/400": slower memory system and half-speed TurboChannel. *)
    copy_bw_nolocal = mbit_per_s 190.;
    copy_bw_cached = mbit_per_s 380.;
    read_bw_nolocal = mbit_per_s 340.;
    read_bw_cached = mbit_per_s 680.;
    cache_bytes = 256 * 1024;
    per_packet_us = 550.;
    ack_us = 150.;
    intr_us = 28.;
    syscall_us = 45.;
    sb_wait_us = 75.;
    pin_base_us = 60.;
    pin_page_us = 50.;
    unpin_base_us = 82.;
    unpin_page_us = 6.7;
    map_base_us = 10.;
    map_page_us = 7.7;
    bus_bw = 14.0e6;
    dma_post_us = 36.;
    dma_engine_us = 100.;
  }

(* Hypothetical shared-memory multiprocessor for the RSS-sharding
   experiments: per-CPU protocol costs stay at alpha400 levels, but the
   I/O system is no longer the bottleneck — a modern split-transaction
   bus (1.25 GByte/s) and a fast DMA engine make per-packet CPU work the
   limiting resource, which is exactly the regime where adding shards
   pays.  The paper's own measurement configurations keep using
   [alpha400] / [alpha300lx] untouched. *)
let smp =
  {
    alpha400 with
    name = "smp";
    bus_bw = 1.25e9;
    dma_post_us = 5.;
    dma_engine_us = 5.;
  }

let all = [ alpha400; alpha300lx; smp ]

let by_name n = List.find_opt (fun p -> p.name = n) all

let pp fmt p =
  Format.fprintf fmt
    "%s: copy %.0f/%.0f Mb/s, read %.0f/%.0f Mb/s, pkt %.0fus, bus %.1f MB/s"
    p.name
    (p.copy_bw_nolocal *. 8. /. 1e6)
    (p.copy_bw_cached *. 8. /. 1e6)
    (p.read_bw_nolocal *. 8. /. 1e6)
    (p.read_bw_cached *. 8. /. 1e6)
    p.per_packet_us (p.bus_bw /. 1e6)
