type t = { vaddr : int; buf : Bytes.t; off : int; len : int }

let create ~vaddr len =
  if len < 0 then invalid_arg "Region.create: negative length";
  { vaddr; buf = Bytes.create len; off = 0; len }

let of_bytes ~vaddr buf = { vaddr; buf; off = 0; len = Bytes.length buf }

let vaddr t = t.vaddr
let length t = t.len
let bytes t =
  if t.off = 0 && t.len = Bytes.length t.buf then t.buf
  else Bytes.sub t.buf t.off t.len

let backing t = (t.buf, t.off)

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg
      (Printf.sprintf "Region.sub: off=%d len=%d in region of %d" off len
         t.len);
  { vaddr = t.vaddr + off; buf = t.buf; off = t.off + off; len }

let blit_to_bytes t ~src_off dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > t.len then
    invalid_arg "Region.blit_to_bytes: out of range";
  Bytes.blit t.buf (t.off + src_off) dst dst_off len

let blit_from_bytes src ~src_off t ~dst_off ~len =
  if dst_off < 0 || len < 0 || dst_off + len > t.len then
    invalid_arg "Region.blit_from_bytes: out of range";
  Bytes.blit src src_off t.buf (t.off + dst_off) len

let blit ~src ~src_off ~dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > src.len then
    invalid_arg "Region.blit: src out of range";
  if dst_off < 0 || dst_off + len > dst.len then
    invalid_arg "Region.blit: dst out of range";
  Bytes.blit src.buf (src.off + src_off) dst.buf (dst.off + dst_off) len

(* ---- fused copy + checksum ---- *)

let blit_csum ~src ~src_off ~dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > src.len then
    invalid_arg "Region.blit_csum: src out of range";
  if dst_off < 0 || dst_off + len > dst.len then
    invalid_arg "Region.blit_csum: dst out of range";
  Inet_csum.copy_and_sum ~src:src.buf ~src_off:(src.off + src_off)
    ~dst:dst.buf ~dst_off:(dst.off + dst_off) ~len

let blit_csum_to_bytes t ~src_off dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > t.len then
    invalid_arg "Region.blit_csum_to_bytes: out of range";
  Inet_csum.copy_and_sum ~src:t.buf ~src_off:(t.off + src_off) ~dst ~dst_off
    ~len

let blit_csum_from_bytes src ~src_off t ~dst_off ~len =
  if dst_off < 0 || len < 0 || dst_off + len > t.len then
    invalid_arg "Region.blit_csum_from_bytes: out of range";
  Inet_csum.copy_and_sum ~src ~src_off ~dst:t.buf ~dst_off:(t.off + dst_off)
    ~len

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let fill_pattern t ~seed =
  (* Position-dependent so truncation / misplacement is detected, seeded so
     distinct transfers are distinguishable.  131 is odd, so the byte
     sequence has period 256: render one cycle, then blit it. *)
  let len = t.len in
  if len <= 256 then
    for i = 0 to len - 1 do
      Bytes.set_uint8 t.buf (t.off + i) ((seed + (i * 131)) land 0xff)
    done
  else begin
    let cycle = Bytes.create 256 in
    for i = 0 to 255 do
      Bytes.set_uint8 cycle i ((seed + (i * 131)) land 0xff)
    done;
    let pos = ref 0 in
    while !pos < len do
      let n = min 256 (len - !pos) in
      Bytes.blit cycle 0 t.buf (t.off + !pos) n;
      pos := !pos + n
    done
  end

let equal_contents a b =
  a.len = b.len
  &&
  let len = a.len in
  let i = ref 0 in
  let ok = ref true in
  while
    !ok && !i + 8 <= len
    (* word-wise compare; any mismatch falls out to the byte loop *)
  do
    if Int64.equal (unsafe_get_64 a.buf (a.off + !i)) (unsafe_get_64 b.buf (b.off + !i))
    then i := !i + 8
    else ok := false
  done;
  while !ok && !i < len do
    if Bytes.get a.buf (a.off + !i) = Bytes.get b.buf (b.off + !i) then incr i
    else ok := false
  done;
  !ok

let pages ~page_size t = Page.count ~page_size ~base:t.vaddr ~len:t.len

let is_word_aligned t = t.vaddr land 3 = 0
