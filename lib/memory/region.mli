(** A contiguous region of simulated host memory.

    Regions carry real bytes (so checksums and data-integrity checks operate
    on actual data) plus a virtual base address (so alignment restrictions
    and page accounting behave as on the real machine). *)

type t

val create : vaddr:int -> int -> t
(** [create ~vaddr len] is a zero-filled region of [len] bytes whose first
    byte lives at virtual address [vaddr]. *)

val of_bytes : vaddr:int -> Bytes.t -> t

val vaddr : t -> int
val length : t -> int
val bytes : t -> Bytes.t
(** The backing store.  Offset 0 of the result corresponds to [vaddr].
    Copies ([Bytes.sub]) when the region is a sub-view of a larger buffer —
    use {!backing} on a data path. *)

val backing : t -> Bytes.t * int
(** [(buf, pos)] such that region byte [i] is [Bytes.get buf (pos + i)].
    Zero-copy, unlike {!bytes}: the buffer is the real backing store and
    may extend beyond the region on both sides, so callers must stay
    within [pos, pos + length t). *)

val sub : t -> off:int -> len:int -> t
(** A view of [len] bytes starting [off] into the region; shares backing
    storage with the parent.  Raises [Invalid_argument] when out of
    range. *)

val blit_to_bytes : t -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit
val blit_from_bytes : Bytes.t -> src_off:int -> t -> dst_off:int -> len:int -> unit
val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit

(** {2 Fused copy + checksum}

    One-pass blit + ones-complement sum of the bytes moved (see
    {!Inet_csum.copy_and_sum}): the software analogue of the CAB DMA
    engines checksumming words as they stream through. *)

val blit_csum :
  src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> Inet_csum.sum

val blit_csum_to_bytes :
  t -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> Inet_csum.sum

val blit_csum_from_bytes :
  Bytes.t -> src_off:int -> t -> dst_off:int -> len:int -> Inet_csum.sum

val fill_pattern : t -> seed:int -> unit
(** Deterministic pattern fill, used by workloads to verify end-to-end data
    integrity. *)

val equal_contents : t -> t -> bool

val pages : page_size:int -> t -> int
(** Number of pages the region spans (by virtual address). *)

val is_word_aligned : t -> bool
(** True when the virtual base address is 32-bit-word aligned — the CAB DMA
    restriction of §4.5. *)
