(** Exact-size-classed free lists of host byte buffers.

    The steady-state datapath allocates the same few buffer sizes over
    and over (network-memory packet buffers are whole numbers of CAB
    pages, driver staging buffers are MTU-sized).  In OCaml any buffer
    over 2 KBytes goes straight to the major heap, so per-packet
    [Bytes.create] turns into GC pressure that dwarfs the data-touching
    cost the paper is trying to expose.  A [Bufpool.t] recycles buffers
    by exact length: [put] files a buffer under its size class, [get]
    pops one of the same length or allocates on a miss.

    Recycled buffers hold stale data — callers overwrite the range they
    use (packet buffers are filled by DMA before any byte is read). *)

type t

val create : ?max_per_class:int -> unit -> t
(** A fresh pool.  Each size class keeps at most [max_per_class]
    (default 64) buffers; surplus [put]s are dropped to the GC. *)

val get : t -> int -> Bytes.t
(** [get t n] is a buffer of exactly [n] bytes, recycled when the size
    class has one free.  Contents are unspecified. *)

val put : t -> Bytes.t -> unit
(** Return a buffer to its size class.  The caller must not touch the
    buffer afterwards. *)

val trim : t -> int
(** Drop every free list; returns the number of bytes released. *)

val hit_count : t -> int
val miss_count : t -> int

val hit_rate : t -> float
(** hits / (hits + misses), 0 when no requests yet. *)

val free_bytes : t -> int
(** Total bytes currently parked on free lists. *)

val outstanding : t -> int
(** [get]s minus [put]s — buffers currently in flight.  Counted even when
    a [put] drops the buffer (full class), so a steady-state datapath
    should return exactly to its baseline; the soak harness diffs this to
    detect leaks. *)

val reset_stats : t -> unit
(** Zero the counters; keeps the free lists. *)

val set_shard_count : t -> int -> unit
(** Switch between unsharded ([1], the default) and sharded ([n > 1])
    mode.  Sharded mode gives each shard a private size-classed free
    list (depth-capped at a quarter of [max_per_class]); the original
    classes become the global spill pool.  Reconfiguring spills all
    local buffers back into the global pool.  Hit/miss/[outstanding]
    accounting is unaffected by the mode. *)

val set_current : t -> int -> unit
(** Select the shard whose free list subsequent traffic uses.  No-op in
    unsharded mode or out of range. *)

val shard_count : t -> int

val local_free_bytes : t -> int
(** Bytes parked across all per-shard free lists ([free_bytes] includes
    them). *)

val shared : t
(** Process-wide instance used by the simulator datapath (network
    memory, driver staging). *)
