type klass = { mutable bufs : Bytes.t list; mutable depth : int }

type t = {
  classes : (int, klass) Hashtbl.t;
  max_per_class : int;
  hits : Stats.Counter.t;
  misses : Stats.Counter.t;
  mutable free_total : int;
  mutable outstanding : int;  (* gets minus puts: buffers in flight *)
  (* Per-shard free lists, active only when [set_shard_count n] with
     n > 1 was called (multi-shard host): [get]/[put] then prefer the
     current shard's private classes, spilling to / refilling from the
     global [classes] above.  Hit/miss/outstanding accounting stays on
     the shared counters so leak detection is shard-agnostic. *)
  mutable locals : (int, klass) Hashtbl.t array;
  mutable cur : int;
  mutable local_free : int;
  local_cap : int;  (* per-shard per-class depth cap *)
}

let create ?(max_per_class = 64) () =
  {
    classes = Hashtbl.create 8;
    max_per_class;
    hits = Stats.Counter.create ();
    misses = Stats.Counter.create ();
    free_total = 0;
    outstanding = 0;
    locals = [||];
    cur = 0;
    local_free = 0;
    local_cap = max 1 (max_per_class / 4);
  }

let global_get t n =
  match Hashtbl.find_opt t.classes n with
  | Some ({ bufs = b :: tl; _ } as k) ->
      k.bufs <- tl;
      k.depth <- k.depth - 1;
      t.free_total <- t.free_total - n;
      Some b
  | Some _ | None -> None

let get t n =
  t.outstanding <- t.outstanding + 1;
  let local =
    if Array.length t.locals = 0 then None
    else
      match Hashtbl.find_opt t.locals.(t.cur) n with
      | Some ({ bufs = b :: tl; _ } as k) ->
          k.bufs <- tl;
          k.depth <- k.depth - 1;
          t.local_free <- t.local_free - n;
          Some b
      | Some _ | None -> None
  in
  match local with
  | Some b ->
      Stats.Counter.incr t.hits;
      b
  | None -> (
      match global_get t n with
      | Some b ->
          Stats.Counter.incr t.hits;
          b
      | None ->
          Stats.Counter.incr t.misses;
          Bytes.create n)

let global_put t b n =
  let k =
    match Hashtbl.find_opt t.classes n with
    | Some k -> k
    | None ->
        let k = { bufs = []; depth = 0 } in
        Hashtbl.replace t.classes n k;
        k
  in
  if k.depth < t.max_per_class then begin
    k.bufs <- b :: k.bufs;
    k.depth <- k.depth + 1;
    t.free_total <- t.free_total + n
  end

let put t b =
  (* Counted even when the class is full and the buffer is dropped to the
     GC: [outstanding] measures caller get/put balance, not pool depth. *)
  t.outstanding <- t.outstanding - 1;
  let n = Bytes.length b in
  if Array.length t.locals = 0 then global_put t b n
  else begin
    let tbl = t.locals.(t.cur) in
    let k =
      match Hashtbl.find_opt tbl n with
      | Some k -> k
      | None ->
          let k = { bufs = []; depth = 0 } in
          Hashtbl.replace tbl n k;
          k
    in
    if k.depth < t.local_cap then begin
      k.bufs <- b :: k.bufs;
      k.depth <- k.depth + 1;
      t.local_free <- t.local_free + n
    end
    else global_put t b n
  end

let spill_locals t =
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun n k -> List.iter (fun b -> global_put t b n) k.bufs)
        tbl;
      Hashtbl.reset tbl)
    t.locals;
  t.local_free <- 0

let set_shard_count t n =
  if n < 1 then invalid_arg "Bufpool.set_shard_count";
  if n <> max 1 (Array.length t.locals) then begin
    spill_locals t;
    t.locals <-
      (if n > 1 then Array.init n (fun _ -> Hashtbl.create 8) else [||]);
    t.cur <- 0
  end

let set_current t i =
  if Array.length t.locals > 0 && i >= 0 && i < Array.length t.locals then
    t.cur <- i

let shard_count t = max 1 (Array.length t.locals)

let trim t =
  let released = t.free_total + t.local_free in
  Hashtbl.reset t.classes;
  t.free_total <- 0;
  Array.iter Hashtbl.reset t.locals;
  t.local_free <- 0;
  released

let hit_count t = Stats.Counter.get t.hits
let miss_count t = Stats.Counter.get t.misses

let hit_rate t =
  let h = hit_count t and m = miss_count t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let free_bytes t = t.free_total + t.local_free
let local_free_bytes t = t.local_free
let outstanding t = t.outstanding

let reset_stats t =
  Stats.Counter.reset t.hits;
  Stats.Counter.reset t.misses

let shared = create ()

(* The shared instance is the one the datapath uses; publish it. *)
let () =
  let s = "bufpool" in
  Obs.gauge ~section:s ~name:"hits" (fun () -> float_of_int (hit_count shared));
  Obs.gauge ~section:s ~name:"misses" (fun () ->
      float_of_int (miss_count shared));
  Obs.gauge ~section:s ~name:"hit_rate" (fun () -> hit_rate shared);
  Obs.gauge ~section:s ~name:"free_bytes" (fun () ->
      float_of_int (free_bytes shared));
  Obs.gauge ~section:s ~name:"free_bytes_local" (fun () ->
      float_of_int (local_free_bytes shared));
  Obs.gauge ~section:s ~name:"outstanding" (fun () ->
      float_of_int (outstanding shared))
