type klass = { mutable bufs : Bytes.t list; mutable depth : int }

type t = {
  classes : (int, klass) Hashtbl.t;
  max_per_class : int;
  hits : Stats.Counter.t;
  misses : Stats.Counter.t;
  mutable free_total : int;
  mutable outstanding : int;  (* gets minus puts: buffers in flight *)
}

let create ?(max_per_class = 64) () =
  {
    classes = Hashtbl.create 8;
    max_per_class;
    hits = Stats.Counter.create ();
    misses = Stats.Counter.create ();
    free_total = 0;
    outstanding = 0;
  }

let get t n =
  t.outstanding <- t.outstanding + 1;
  match Hashtbl.find_opt t.classes n with
  | Some ({ bufs = b :: tl; _ } as k) ->
      k.bufs <- tl;
      k.depth <- k.depth - 1;
      t.free_total <- t.free_total - n;
      Stats.Counter.incr t.hits;
      b
  | Some _ | None ->
      Stats.Counter.incr t.misses;
      Bytes.create n

let put t b =
  (* Counted even when the class is full and the buffer is dropped to the
     GC: [outstanding] measures caller get/put balance, not pool depth. *)
  t.outstanding <- t.outstanding - 1;
  let n = Bytes.length b in
  let k =
    match Hashtbl.find_opt t.classes n with
    | Some k -> k
    | None ->
        let k = { bufs = []; depth = 0 } in
        Hashtbl.replace t.classes n k;
        k
  in
  if k.depth < t.max_per_class then begin
    k.bufs <- b :: k.bufs;
    k.depth <- k.depth + 1;
    t.free_total <- t.free_total + n
  end

let trim t =
  let released = t.free_total in
  Hashtbl.reset t.classes;
  t.free_total <- 0;
  released

let hit_count t = Stats.Counter.get t.hits
let miss_count t = Stats.Counter.get t.misses

let hit_rate t =
  let h = hit_count t and m = miss_count t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let free_bytes t = t.free_total
let outstanding t = t.outstanding

let reset_stats t =
  Stats.Counter.reset t.hits;
  Stats.Counter.reset t.misses

let shared = create ()

(* The shared instance is the one the datapath uses; publish it. *)
let () =
  let s = "bufpool" in
  Obs.gauge ~section:s ~name:"hits" (fun () -> float_of_int (hit_count shared));
  Obs.gauge ~section:s ~name:"misses" (fun () ->
      float_of_int (miss_count shared));
  Obs.gauge ~section:s ~name:"hit_rate" (fun () -> hit_rate shared);
  Obs.gauge ~section:s ~name:"free_bytes" (fun () ->
      float_of_int (free_bytes shared));
  Obs.gauge ~section:s ~name:"outstanding" (fun () ->
      float_of_int (outstanding shared))
