(* Time-series flight recorder over registry metrics.

   A recorder resolves a fixed set of registered counters/gauges at
   creation time and, on every [tick], appends one row to a
   fixed-capacity ring: the sim-clock timestamp plus one float column
   per metric (counters as per-interval deltas, gauges as sampled
   values).  When the ring is full the oldest row is overwritten, so a
   long soak keeps the most recent window.

   The tick path is alloc-free for counter columns: deltas live in a
   preallocated int array and land in a flat float array (unboxed
   stores).  Gauge columns cost one boxed float per sample (the closure
   return), which is why the Gc-gated bench recorders stick to
   counters. *)

type src = S_counter of Obs.Counter.t | S_gauge of (unit -> float)

type t = {
  capacity : int;
  interval : int;  (* ns between ticks; informational, stored for export *)
  names : string array;  (* "section/name" per column *)
  srcs : src array;
  prev : int array;  (* last counter reading per column (0 for gauges) *)
  times : int array;  (* ns timestamp per ring row *)
  data : float array;  (* capacity * ncols, row-major *)
  mutable head : int;  (* oldest row *)
  mutable len : int;
  mutable dropped : int;  (* rows overwritten after the ring filled *)
}

let create ~capacity ~interval ~metrics =
  if capacity <= 0 then invalid_arg "Obs_series.create: capacity";
  if metrics = [] then invalid_arg "Obs_series.create: no metrics";
  let resolve (section, name) =
    match Obs.find ~section ~name with
    | Some (Obs.M_counter c) -> S_counter c
    | Some (Obs.M_gauge f) -> S_gauge f
    | Some _ ->
        invalid_arg
          (Printf.sprintf "Obs_series.create: %s/%s is not a counter or gauge"
             section name)
    | None ->
        invalid_arg
          (Printf.sprintf "Obs_series.create: no metric %s/%s" section name)
  in
  let srcs = Array.of_list (List.map resolve metrics) in
  let names =
    Array.of_list (List.map (fun (s, n) -> s ^ "/" ^ n) metrics)
  in
  let ncols = Array.length srcs in
  let prev = Array.make ncols 0 in
  Array.iteri
    (fun j s ->
      match s with
      | S_counter c -> prev.(j) <- Obs.Counter.get c
      | S_gauge _ -> ())
    srcs;
  {
    capacity;
    interval;
    names;
    srcs;
    prev;
    times = Array.make capacity 0;
    data = Array.make (capacity * ncols) 0.;
    head = 0;
    len = 0;
    dropped = 0;
  }

let ncols t = Array.length t.srcs
let length t = t.len
let dropped t = t.dropped

let tick t ~now =
  let m = Array.length t.srcs in
  let row =
    if t.len = t.capacity then begin
      let r = t.head in
      t.head <- (t.head + 1) mod t.capacity;
      t.dropped <- t.dropped + 1;
      r
    end
    else begin
      let r = (t.head + t.len) mod t.capacity in
      t.len <- t.len + 1;
      r
    end
  in
  t.times.(row) <- now;
  let base = row * m in
  for j = 0 to m - 1 do
    match Array.unsafe_get t.srcs j with
    | S_counter c ->
        let cur = Obs.Counter.get c in
        let d = cur - Array.unsafe_get t.prev j in
        Array.unsafe_set t.prev j cur;
        Array.unsafe_set t.data (base + j) (float_of_int d)
    | S_gauge f -> Array.unsafe_set t.data (base + j) (f ())
  done

let iter t f =
  let m = Array.length t.srcs in
  for i = 0 to t.len - 1 do
    let row = (t.head + i) mod t.capacity in
    f ~time:t.times.(row) ~row:(Array.sub t.data (row * m) m)
  done

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  Array.iteri
    (fun j s ->
      match s with
      | S_counter c -> t.prev.(j) <- Obs.Counter.get c
      | S_gauge _ -> ())
    t.srcs

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"interval_ns\": %d,\n  \"capacity\": %d,\n  \"dropped\": %d,\n\
       \  \"metrics\": ["
       t.interval t.capacity t.dropped);
  Array.iteri
    (fun j n ->
      if j > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\"" n))
    t.names;
  Buffer.add_string b "],\n  \"samples\": [";
  let first = ref true in
  iter t (fun ~time ~row ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b (Printf.sprintf "\n    [%d" time);
      Array.iter
        (fun v -> Buffer.add_string b (Printf.sprintf ", %s" (json_float v)))
        row;
      Buffer.add_char b ']');
  Buffer.add_string b "\n  ]\n}";
  Buffer.contents b
