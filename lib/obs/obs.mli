(** Central metrics registry.

    Every subsystem that keeps ad-hoc statistics (mbuf pools, the frame
    bufpool, the pin cache, the adaptive path policy, the CAB adaptor and
    its driver) publishes them here under a [section], so one call —
    {!to_json} — exports a consistent snapshot of the whole datapath.

    Design constraints (see ISSUE 4):

    - zero allocation in steady state: counters are a single mutable int;
      gauges and tables are closures evaluated only at export time;
      histograms are fixed 63-slot int arrays.
    - registration uses {e replace} semantics keyed by [(section, name)]:
      per-instance subsystems (a CAB per host, a policy per socket)
      re-register on creation and the latest instance wins, which matches
      how the benchmarks reuse one process for many testbeds. *)

(** Monotonic counter: one mutable int, safe to bump on the hot path. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** Log2-bucketed histogram for size/latency-like quantities.

    Bucket [i] covers values in [\[2^i, 2^(i+1))]; bucket 0 also absorbs
    values [<= 1] (including zero and negatives). 63 buckets cover the
    whole positive [int] range, so {!observe} never allocates and never
    branches out of range. *)
module Histogram : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit
  val count : t -> int

  val bucket_of : int -> int
  (** [bucket_of v] is the index [observe] charges for [v]:
      [floor (log2 v)] clamped to [\[0, 62\]]. *)

  val bucket_lo : int -> int
  (** Inclusive lower bound of bucket [i] (= [2^i]; bucket 0 reports 0). *)

  val bucket_hi : int -> int
  (** Exclusive upper bound of bucket [i] (= [2^(i+1)], [max_int] for the
      last bucket). *)

  val bucket_count : t -> int -> int
  val reset : t -> unit

  val quantile : t -> float -> float option
  (** [quantile t q] estimates the [q]-quantile ([0. <= q <= 1.],
      clamped) of the observed samples under the continuous-rank
      convention [r = q * (count - 1)], interpolating log-linearly
      within the containing log2 bucket (linearly in bucket 0, which
      holds values [<= 1]).  [None] when the histogram is empty.  The
      estimate is off by at most one bucket width (a factor of 2). *)
end

(** What a registered metric is. *)
type metric =
  | M_counter of Counter.t
  | M_gauge of (unit -> float)  (** sampled only at export *)
  | M_histogram of Histogram.t
  | M_table of (unit -> string)
      (** lazy JSON fragment (object or array), e.g. EWMA cost tables *)

val register : section:string -> name:string -> metric -> unit
(** Replace-register under [(section, name)]. *)

val counter : section:string -> name:string -> Counter.t
(** Create and register a counter in one step. *)

val gauge : section:string -> name:string -> (unit -> float) -> unit
val histogram : section:string -> name:string -> Histogram.t
val table : section:string -> name:string -> (unit -> string) -> unit

val find : section:string -> name:string -> metric option

val sections : unit -> string list
(** Registered section names, sorted. *)

val to_json : ?sections:string list -> unit -> string
(** Export the registry (or just the named sections) as a JSON object
    [{section: {name: value, ...}, ...}]. Counters export as ints, gauges
    as floats, histograms as [{count; buckets: [[lo; hi; n], ...]}] with
    empty buckets elided, tables as their verbatim JSON fragment.
    Sections and names are emitted in sorted order, so the output is
    independent of registration order. *)

val reset : unit -> unit
(** Reset every registered counter and histogram (gauges and tables read
    live state and are unaffected). *)
