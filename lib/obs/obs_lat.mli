(** Per-flow latency histograms (section ["lat"] in the Obs registry).

    Process-global log2 histograms of simulated-clock latencies, in
    nanoseconds.  The instrumented layers (TCP, sockets, the copy-out
    path) stamp a start time and observe the delta when the completion
    event fires; both hosts of a testbed share the same histograms. *)

val conn_setup_ns : Obs.Histogram.t
(** Active open: [connect] (SYN sent) to ESTABLISHED; passive open:
    SYN received to ESTABLISHED. *)

val write_ack_ns : Obs.Histogram.t
(** [Socket.write] accepting a byte range to the ACK covering it
    (single-slot sampling per connection, Karn-style: only one write is
    timed at a time and retransmitted ranges are discarded). *)

val rx_copyout_ns : Obs.Histogram.t
(** Receive copy-out: work item posted to the copy engine to delivery
    into the application buffer. *)

val rtt_ns : Obs.Histogram.t
(** TCP RTT samples, as fed to the RTO estimator. *)

val accept_ns : Obs.Histogram.t
(** Listener accept queue residency: connection promoted to ESTABLISHED
    to the application's [Tcp.accept] dequeuing it. *)

val all : (string * Obs.Histogram.t) list
(** The histograms with their registry names. *)

val reset : unit -> unit
(** Reset all histograms (bench harnesses call this after warm-up so
    percentiles cover only measured iterations). *)

val quantiles_json : Obs.Histogram.t -> string
(** [{"count": n, "p50": x, "p90": y, "p99": z}] — quantiles [null]
    when the histogram is empty. *)

val summary_json : unit -> string
(** JSON object mapping each latency site name to its
    {!quantiles_json}. *)
