type event =
  | Sock_write
  | Sendq_append
  | Sendq_merge
  | Packetize
  | Seed_compute
  | Sdma_post
  | Doorbell
  | Intr
  | Rx_adjust
  | Sock_read
  | Rx_autodma
  | Rx_copyout

let event_name = function
  | Sock_write -> "sock_write"
  | Sendq_append -> "sendq_append"
  | Sendq_merge -> "sendq_merge"
  | Packetize -> "packetize"
  | Seed_compute -> "seed_compute"
  | Sdma_post -> "sdma_post"
  | Doorbell -> "doorbell"
  | Intr -> "intr"
  | Rx_adjust -> "rx_adjust"
  | Sock_read -> "sock_read"
  | Rx_autodma -> "rx_autodma"
  | Rx_copyout -> "rx_copyout"

let ev_code = function
  | Sock_write -> 0
  | Sendq_append -> 1
  | Sendq_merge -> 2
  | Packetize -> 3
  | Seed_compute -> 4
  | Sdma_post -> 5
  | Doorbell -> 6
  | Intr -> 7
  | Rx_adjust -> 8
  | Sock_read -> 9
  | Rx_autodma -> 10
  | Rx_copyout -> 11

let ev_of_code = function
  | 0 -> Sock_write
  | 1 -> Sendq_append
  | 2 -> Sendq_merge
  | 3 -> Packetize
  | 4 -> Seed_compute
  | 5 -> Sdma_post
  | 6 -> Doorbell
  | 7 -> Intr
  | 8 -> Rx_adjust
  | 9 -> Sock_read
  | 10 -> Rx_autodma
  | _ -> Rx_copyout

type slot = { mutable ts : int; mutable ev : int; mutable a : int; mutable b : int }

type ring = {
  slots : slot array;
  mutable head : int;  (* next write position *)
  mutable len : int;   (* live events, <= capacity *)
  mutable dropped : int;
}

let make_ring capacity =
  {
    slots = Array.init capacity (fun _ -> { ts = 0; ev = 0; a = 0; b = 0 });
    head = 0;
    len = 0;
    dropped = 0;
  }

let ring = ref (make_ring 1024)
let on = ref false
let clock = ref (fun () -> 0)

let configure ~capacity =
  if capacity <= 0 then invalid_arg "Obs_trace.configure: capacity";
  ring := make_ring capacity

let set_clock f = clock := f
let enable () = on := true
let disable () = on := false
let enabled () = !on

let emit ev ~a ~b =
  if !on then begin
    let r = !ring in
    let cap = Array.length r.slots in
    let s = r.slots.(r.head) in
    s.ts <- !clock ();
    s.ev <- ev_code ev;
    s.a <- a;
    s.b <- b;
    r.head <- (if r.head + 1 = cap then 0 else r.head + 1);
    if r.len = cap then r.dropped <- r.dropped + 1 else r.len <- r.len + 1
  end

let length () = (!ring).len
let dropped () = (!ring).dropped

let reset () =
  let r = !ring in
  r.head <- 0;
  r.len <- 0;
  r.dropped <- 0

let iter f =
  let r = !ring in
  let cap = Array.length r.slots in
  let start = (r.head - r.len + cap) mod cap in
  for i = 0 to r.len - 1 do
    let s = r.slots.((start + i) mod cap) in
    f ~ts:s.ts (ev_of_code s.ev) ~a:s.a ~b:s.b
  done

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"dropped\": %d, \"events\": [" (dropped ()));
  let first = ref true in
  iter (fun ~ts ev ~a ~b ->
      if not !first then Buffer.add_string buf ", ";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"ts\": %d, \"ev\": \"%s\", \"a\": %d, \"b\": %d}"
           ts (event_name ev) a b));
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Chrome trace-event format: instant events on one pid/tid, ts in
   microseconds. Load via chrome://tracing or ui.perfetto.dev. *)
let to_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  let first = ref true in
  iter (fun ~ts ev ~a ~b ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \
            \"tid\": 1, \"ts\": %.3f, \"args\": {\"a\": %d, \"b\": %d}}"
           (event_name ev)
           (float_of_int ts /. 1000.)
           a b));
  Buffer.add_string buf "\n]}";
  Buffer.contents buf
