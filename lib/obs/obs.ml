module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let get t = t.n
  let reset t = t.n <- 0
end

module Histogram = struct
  let buckets = 63

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make buckets 0; total = 0 }

  let bucket_of v =
    if v <= 1 then 0
    else
      let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
      let b = go 0 v in
      if b > buckets - 1 then buckets - 1 else b

  let observe t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_lo i = if i = 0 then 0 else 1 lsl i
  let bucket_hi i = if i >= buckets - 1 then max_int else 1 lsl (i + 1)

  let bucket_count t i =
    if i < 0 || i >= buckets then invalid_arg "Histogram.bucket_count"
    else t.counts.(i)

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.total <- 0

  (* Continuous-rank quantile with log-linear interpolation inside the
     containing bucket: all we kept of each sample is its log2 bucket, so
     the estimate assumes samples spread geometrically across [2^i,
     2^(i+1)).  Bucket 0 (values <= 1) interpolates linearly over [0, 2).
     The overflow bucket extrapolates with the same 2x width. *)
  let quantile t q =
    if t.total = 0 then None
    else
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let r = q *. float_of_int (t.total - 1) in
      let i = ref 0 and cum = ref 0 in
      while float_of_int (!cum + t.counts.(!i)) <= r do
        cum := !cum + t.counts.(!i);
        incr i
      done;
      let n = t.counts.(!i) in
      let frac = (r -. float_of_int !cum +. 0.5) /. float_of_int n in
      let frac = if frac > 1. then 1. else frac in
      if !i = 0 then Some (2.0 *. frac)
      else Some (float_of_int (1 lsl !i) *. (2.0 ** frac))
end

type metric =
  | M_counter of Counter.t
  | M_gauge of (unit -> float)
  | M_histogram of Histogram.t
  | M_table of (unit -> string)

(* Registry: keyed (section, name); replace semantics so per-instance
   subsystems re-register freely. Export order is sorted (sections, then
   names) so JSON output is deterministic. *)
let tbl : (string * string, metric) Hashtbl.t = Hashtbl.create 64
let order : (string * string) list ref = ref []

let register ~section ~name m =
  let key = (section, name) in
  if not (Hashtbl.mem tbl key) then order := key :: !order;
  Hashtbl.replace tbl key m

let counter ~section ~name =
  let c = Counter.create () in
  register ~section ~name (M_counter c);
  c

let gauge ~section ~name f = register ~section ~name (M_gauge f)

let histogram ~section ~name =
  let h = Histogram.create () in
  register ~section ~name (M_histogram h);
  h

let table ~section ~name f = register ~section ~name (M_table f)
let find ~section ~name = Hashtbl.find_opt tbl (section, name)

(* Sorted, not insertion-ordered: JSON export (and any golden test or
   registry diff built on it) must not depend on module-init order. *)
let ordered () =
  List.sort
    (fun (s1, n1) (s2, n2) ->
      match String.compare s1 s2 with 0 -> String.compare n1 n2 | c -> c)
    !order

let sections () =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (s, _) ->
      if Hashtbl.mem seen s then None
      else (
        Hashtbl.add seen s ();
        Some s))
    (ordered ())

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let metric_json = function
  | M_counter c -> string_of_int (Counter.get c)
  | M_gauge f -> json_float (f ())
  | M_table f -> f ()
  | M_histogram h ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "{\"count\": %d, \"buckets\": [" (Histogram.count h));
      let first = ref true in
      for i = 0 to Histogram.buckets - 1 do
        let n = Histogram.bucket_count h i in
        if n > 0 then (
          if not !first then Buffer.add_string b ", ";
          first := false;
          Buffer.add_string b
            (Printf.sprintf "[%d, %d, %d]" (Histogram.bucket_lo i)
               (Histogram.bucket_hi i) n))
      done;
      Buffer.add_string b "]}";
      Buffer.contents b

let to_json ?sections:(only = []) () =
  let keep s = only = [] || List.mem s only in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  let first_section = ref true in
  List.iter
    (fun s ->
      if keep s then (
        if not !first_section then Buffer.add_string buf ",";
        first_section := false;
        Buffer.add_string buf (Printf.sprintf "\n  \"%s\": {" s);
        let first = ref true in
        List.iter
          (fun (s', n) ->
            if String.equal s s' then
              match Hashtbl.find_opt tbl (s', n) with
              | None -> ()
              | Some m ->
                  if not !first then Buffer.add_string buf ",";
                  first := false;
                  Buffer.add_string buf
                    (Printf.sprintf "\n    \"%s\": %s" n (metric_json m)))
          (ordered ());
        Buffer.add_string buf "\n  }"))
    (sections ());
  Buffer.add_string buf "\n}";
  Buffer.contents buf

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Counter.reset c
      | M_histogram h -> Histogram.reset h
      | M_gauge _ | M_table _ -> ())
    tbl
