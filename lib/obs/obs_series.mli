(** Time-series flight recorder: fixed-capacity ring of periodic
    snapshots of registry counters/gauges.

    A recorder binds a list of [(section, name)] metrics at creation
    time; each {!tick} (driven by the caller, typically a [Sim.periodic]
    timing-wheel timer) appends one row — the sim-clock timestamp plus
    one float column per metric.  Counters are recorded as per-interval
    deltas; gauges are sampled.  When full, the oldest row is
    overwritten and {!dropped} counts the loss, so benches and soaks
    keep the most recent window of activity.

    The tick path performs no allocation for counter columns (flat
    preallocated arrays, unboxed float stores); each gauge column costs
    one boxed float per tick. *)

type t

val create :
  capacity:int -> interval:int -> metrics:(string * string) list -> t
(** [create ~capacity ~interval ~metrics] resolves each [(section,
    name)] against the Obs registry now (raising [Invalid_argument] if
    a metric is missing or is not a counter/gauge) and preallocates a
    [capacity]-row ring.  [interval] is the intended ns between ticks;
    it is not enforced, only recorded in the export header. *)

val tick : t -> now:int -> unit
(** Append one snapshot row stamped [now] (sim-clock ns), overwriting
    the oldest row when the ring is full. *)

val length : t -> int
(** Rows currently held (<= capacity). *)

val ncols : t -> int
val dropped : t -> int
(** Rows lost to overwrite since creation/{!clear}. *)

val iter : t -> (time:int -> row:float array -> unit) -> unit
(** Visit held rows oldest-first.  [row] is a fresh copy per call. *)

val clear : t -> unit
(** Drop all rows and re-base counter deltas at current values. *)

val to_json : t -> string
(** [{"interval_ns", "capacity", "dropped", "metrics": [names...],
    "samples": [[t_ns, v0, v1, ...], ...]}], samples oldest-first. *)
