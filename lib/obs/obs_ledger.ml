type site =
  | Sock_tx_copy
  | Sock_rx_copy
  | Tcp_tx_csum
  | Tcp_rx_csum
  | Tcp_flatten
  | Drv_tx_header
  | Drv_tx_gather
  | Drv_tx_stage
  | Drv_rx_head
  | Drv_rx_stage
  | Sdma_header
  | Sdma_payload
  | Media
  | Rx_engine
  | Copyout

type op = Copy | Sum | Copy_sum

let site_name = function
  | Sock_tx_copy -> "sock_tx_copy"
  | Sock_rx_copy -> "sock_rx_copy"
  | Tcp_tx_csum -> "tcp_tx_csum"
  | Tcp_rx_csum -> "tcp_rx_csum"
  | Tcp_flatten -> "tcp_flatten"
  | Drv_tx_header -> "drv_tx_header"
  | Drv_tx_gather -> "drv_tx_gather"
  | Drv_tx_stage -> "drv_tx_stage"
  | Drv_rx_head -> "drv_rx_head"
  | Drv_rx_stage -> "drv_rx_stage"
  | Sdma_header -> "sdma_header"
  | Sdma_payload -> "sdma_payload"
  | Media -> "media"
  | Rx_engine -> "rx_engine"
  | Copyout -> "copyout"

let all_sites =
  [
    Sock_tx_copy; Sock_rx_copy; Tcp_tx_csum; Tcp_rx_csum; Tcp_flatten;
    Drv_tx_header; Drv_tx_gather; Drv_tx_stage; Drv_rx_head; Drv_rx_stage;
    Sdma_header; Sdma_payload; Media; Rx_engine; Copyout;
  ]

let site_idx = function
  | Sock_tx_copy -> 0
  | Sock_rx_copy -> 1
  | Tcp_tx_csum -> 2
  | Tcp_rx_csum -> 3
  | Tcp_flatten -> 4
  | Drv_tx_header -> 5
  | Drv_tx_gather -> 6
  | Drv_tx_stage -> 7
  | Drv_rx_head -> 8
  | Drv_rx_stage -> 9
  | Sdma_header -> 10
  | Sdma_payload -> 11
  | Media -> 12
  | Rx_engine -> 13
  | Copyout -> 14

let nsites = 15
let op_idx = function Copy -> 0 | Sum -> 1 | Copy_sum -> 2
let nops = 3
let cells = nsites * nops

(* Always-on global ledger: two flat int arrays, indexed site*nops+op. *)
let byte_cells = Array.make cells 0
let occ_cells = Array.make cells 0

let touch site op n =
  let i = (site_idx site * nops) + op_idx op in
  byte_cells.(i) <- byte_cells.(i) + n;
  occ_cells.(i) <- occ_cells.(i) + 1

type snapshot = { b : int array; o : int array }

let snapshot () = { b = Array.copy byte_cells; o = Array.copy occ_cells }

let diff later earlier =
  {
    b = Array.init cells (fun i -> later.b.(i) - earlier.b.(i));
    o = Array.init cells (fun i -> later.o.(i) - earlier.o.(i));
  }

let since s = diff (snapshot ()) s
let bytes s site op = s.b.((site_idx site * nops) + op_idx op)
let occurrences s site op = s.o.((site_idx site * nops) + op_idx op)
let copied_bytes s site = bytes s site Copy + bytes s site Copy_sum
let summed_bytes s site = bytes s site Sum + bytes s site Copy_sum

(* Drv_tx_header moves protocol headers, not payload, so it stays out of
   the per-payload-byte copy metrics (it is still exported per-site). *)
let host_tx_copy_sites = [ Sock_tx_copy; Tcp_flatten; Drv_tx_gather; Drv_tx_stage ]
let host_rx_copy_sites = [ Sock_rx_copy; Drv_rx_head; Drv_rx_stage ]

let sum_over sites f = List.fold_left (fun acc site -> acc + f site) 0 sites
let host_tx_copy_bytes s = sum_over host_tx_copy_sites (copied_bytes s)
let host_rx_copy_bytes s = sum_over host_rx_copy_sites (copied_bytes s)
let host_tx_sum_bytes s = summed_bytes s Tcp_tx_csum + summed_bytes s Tcp_flatten
let host_rx_sum_bytes s = summed_bytes s Tcp_rx_csum

let per_byte n ~payload = if payload <= 0 then 0. else float_of_int n /. float_of_int payload

let tx_copies_per_byte s ~payload =
  per_byte (host_tx_copy_bytes s + copied_bytes s Sdma_payload) ~payload

let rx_copies_per_byte s ~payload =
  per_byte (host_rx_copy_bytes s + copied_bytes s Copyout) ~payload

let tx_sums_per_byte s ~payload = per_byte (host_tx_sum_bytes s) ~payload
let rx_sums_per_byte s ~payload = per_byte (host_rx_sum_bytes s) ~payload

let to_json s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  let first = ref true in
  List.iter
    (fun site ->
      let cb = copied_bytes s site and sb = summed_bytes s site in
      let ops =
        occurrences s site Copy + occurrences s site Sum
        + occurrences s site Copy_sum
      in
      if cb <> 0 || sb <> 0 || ops <> 0 then (
        if not !first then Buffer.add_string buf ",";
        first := false;
        Buffer.add_string buf
          (Printf.sprintf
             "\n  \"%s\": {\"copy_bytes\": %d, \"sum_bytes\": %d, \"ops\": %d}"
             (site_name site) cb sb ops)))
    all_sites;
  Buffer.add_string buf "\n}";
  Buffer.contents buf

let report_json s ~payload =
  Printf.sprintf
    "{\"payload_bytes\": %d, \"tx_copies_per_byte\": %.4f, \
     \"tx_sums_per_byte\": %.4f, \"rx_copies_per_byte\": %.4f, \
     \"rx_sums_per_byte\": %.4f, \"host_tx_copy_bytes\": %d, \
     \"host_rx_copy_bytes\": %d, \"host_tx_sum_bytes\": %d, \
     \"host_rx_sum_bytes\": %d, \"sdma_payload_bytes\": %d, \
     \"copyout_bytes\": %d}"
    payload
    (tx_copies_per_byte s ~payload)
    (tx_sums_per_byte s ~payload)
    (rx_copies_per_byte s ~payload)
    (rx_sums_per_byte s ~payload)
    (host_tx_copy_bytes s) (host_rx_copy_bytes s) (host_tx_sum_bytes s)
    (host_rx_sum_bytes s)
    (copied_bytes s Sdma_payload)
    (copied_bytes s Copyout)

let reset () =
  Array.fill byte_cells 0 cells 0;
  Array.fill occ_cells 0 cells 0
