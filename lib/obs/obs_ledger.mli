(** Data-touch ledger.

    Every byte-touching operation on the datapath ([blit],
    [copy_and_sum], standalone checksum passes, legacy flatten) is
    charged to a {!site} — a (layer, path) pair — with an {!op} saying
    whether the bytes were copied, summed, or both at once. From a
    {!snapshot} diff the simulator reports copies-per-byte and
    checksums-per-byte for a run window, which is what makes the paper's
    single-copy claim machine-checkable:

    - single-copy tx (M_UIO): host copies/byte = 0, the only payload
      movement is the [Sdma_payload] DMA (→ copies/byte = 1.0), and host
      checksums/byte = 0 (folded into the DMA).
    - unmodified tx: socket copyin + driver gather ≈ 2 copies/byte plus
      ≈ 1 host checksum/byte.

    Charging happens at call sites, not inside the byte-moving
    primitives, so layer attribution survives code reuse (the same
    [Region.blit] is a socket copyin in one caller and a driver staging
    copy in another). The ledger is always on: {!touch} is two int-array
    adds, no allocation. *)

(** Where bytes were touched. [`Host] sites burn host CPU on payload;
    [`Adaptor] sites are DMA engines / the wire side of the CAB. *)
type site =
  | Sock_tx_copy   (** socket copyin, user → kernel mbuf (host, tx) *)
  | Sock_rx_copy   (** socket read, kernel mbuf → user (host, rx) *)
  | Tcp_tx_csum    (** software transmit checksum pass (host, tx) *)
  | Tcp_rx_csum    (** software verify pass, incl. hw-path header prefix
                       sums (host, rx) *)
  | Tcp_flatten    (** outboard-rescue / legacy flatten (host, tx) *)
  | Drv_tx_header  (** driver gather of protocol-header prefix bytes
                       (host, tx; excluded from payload copy metrics) *)
  | Drv_tx_gather  (** driver gather fallback: payload staged into a
                       contiguous header blob (host, tx) *)
  | Drv_tx_stage   (** unaligned uio piece staged via kernel bounce
                       buffer (host, tx) *)
  | Drv_rx_head    (** auto-DMA'd packet head copied into mbufs
                       (host, rx) *)
  | Drv_rx_stage   (** unaligned copy-out bounce, stage → user
                       (host, rx) *)
  | Sdma_header    (** SDMA of header segments, host mem → netmem
                       (adaptor, tx) *)
  | Sdma_payload   (** SDMA of payload descriptors, user/kernel mem →
                       netmem (adaptor, tx) *)
  | Media          (** MDMA netmem → wire frame (adaptor, tx) *)
  | Rx_engine      (** wire frame → netmem, checksum folded
                       (adaptor, rx) *)
  | Copyout        (** copy-out DMA netmem → host/user memory
                       (adaptor, rx) *)

type op =
  | Copy      (** bytes moved *)
  | Sum       (** bytes read for a checksum *)
  | Copy_sum  (** fused: counts as one copy and one sum *)

val site_name : site -> string
val all_sites : site list

val touch : site -> op -> int -> unit
(** [touch site op bytes]: charge [bytes] to [(site, op)] and bump the
    occurrence count. Hot-path safe: two int adds. *)

type snapshot

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: per-cell subtraction — the touches in a window. *)

val since : snapshot -> snapshot
(** [since s] = [diff (snapshot ()) s]. *)

val bytes : snapshot -> site -> op -> int
val occurrences : snapshot -> site -> op -> int

val copied_bytes : snapshot -> site -> int
(** Copy + Copy_sum bytes at a site. *)

val summed_bytes : snapshot -> site -> int
(** Sum + Copy_sum bytes at a site. *)

(** Derived per-direction aggregates. "Host" excludes [Drv_tx_header]
    (protocol headers, not payload). *)

val host_tx_copy_bytes : snapshot -> int
val host_rx_copy_bytes : snapshot -> int
val host_tx_sum_bytes : snapshot -> int
val host_rx_sum_bytes : snapshot -> int

val tx_copies_per_byte : snapshot -> payload:int -> float
(** (host tx copies + [Sdma_payload] DMA) / payload — 1.0 on the
    single-copy path, ≈2.0 unmodified. *)

val rx_copies_per_byte : snapshot -> payload:int -> float
(** (host rx copies + [Copyout] DMA) / payload. *)

val tx_sums_per_byte : snapshot -> payload:int -> float
val rx_sums_per_byte : snapshot -> payload:int -> float

val to_json : snapshot -> string
(** Per-site [{copy_bytes; sum_bytes; ops}] for non-zero sites. *)

val report_json : snapshot -> payload:int -> string
(** The headline object: copies/checksums per byte per direction plus the
    raw host/DMA byte totals for a window that moved [payload] bytes. *)

val reset : unit -> unit
