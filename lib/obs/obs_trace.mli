(** Fixed-capacity ring-buffer packet tracer.

    Records descriptor lifecycle events (socket write → sendq append /
    merge → packetize → checksum-seed compute → SDMA post → doorbell →
    interrupt → rx adjust → socket read) with simulator timestamps.

    Steady-state discipline: when disabled, {!emit} is one mutable-bool
    test and returns; when enabled it writes four ints into a
    preallocated slot. The ring never allocates after {!configure}. When
    full, the oldest event is overwritten and {!dropped} counts each
    overwrite, so exports always hold the {e latest} [capacity] events in
    chronological order. *)

type event =
  | Sock_write      (** a = bytes requested, b = route (0 copy / 1 uio) *)
  | Sendq_append    (** a = bytes appended, b = queue length after *)
  | Sendq_merge     (** a = bytes appended into an existing descriptor *)
  | Packetize       (** a = sequence number, b = segment length *)
  | Seed_compute    (** a = sequence number, b = checksum seed *)
  | Sdma_post       (** a = segment bytes, b = segments in chain *)
  | Doorbell        (** a = packet length, b = pending doorbells *)
  | Intr            (** a = notifications delivered in this batch *)
  | Rx_adjust       (** a = sequence number, b = adjusted checksum *)
  | Sock_read       (** a = bytes delivered to the application *)
  | Rx_autodma
      (** rx auto-DMA/verify engine completed a head prefix:
          a = prefix bytes, b = netmem packet id *)
  | Rx_copyout
      (** copy-out engine accepted a post: a = bytes, b = posts in
          flight on the engine (after this one) *)

val event_name : event -> string

val configure : capacity:int -> unit
(** (Re)allocate the ring. Implies {!reset}. Capacity must be positive. *)

val set_clock : (unit -> int) -> unit
(** Install the timestamp source (sim time in ns); the testbed installs
    [Sim.now]. Defaults to a 0-returning clock. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val emit : event -> a:int -> b:int -> unit
(** Record an event (no-op when disabled). *)

val length : unit -> int
(** Events currently held (≤ capacity). *)

val dropped : unit -> int
(** Events overwritten since the last {!reset}/{!configure}. *)

val reset : unit -> unit
(** Empty the ring and zero the drop count (keeps capacity and clock). *)

val iter : (ts:int -> event -> a:int -> b:int -> unit) -> unit
(** Visit retained events oldest-first. *)

val to_json : unit -> string
(** [{"dropped": n, "events": [{"ts";"ev";"a";"b"}, ...]}], oldest
    first. *)

val to_chrome : unit -> string
(** Chrome trace-event format (chrome://tracing, Perfetto): one instant
    event per record, [ts] in microseconds. *)
