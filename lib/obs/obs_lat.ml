(* Per-flow latency histograms, process-global under section "lat".

   These are module-level (not per-host) on purpose: the registry's
   replace semantics would otherwise let the last-created host instance
   shadow its peer's histograms, and a latency distribution is
   meaningful merged across both ends of a testbed anyway.  Callers
   stamp a start time on the sim clock and observe the delta (ns) at
   the completion event; observing is one array bump, alloc-free. *)

let conn_setup_ns = Obs.histogram ~section:"lat" ~name:"conn_setup_ns"
let write_ack_ns = Obs.histogram ~section:"lat" ~name:"write_ack_ns"
let rx_copyout_ns = Obs.histogram ~section:"lat" ~name:"rx_copyout_ns"
let rtt_ns = Obs.histogram ~section:"lat" ~name:"rtt_ns"
let accept_ns = Obs.histogram ~section:"lat" ~name:"accept_ns"

let all =
  [
    ("conn_setup_ns", conn_setup_ns);
    ("write_ack_ns", write_ack_ns);
    ("rx_copyout_ns", rx_copyout_ns);
    ("rtt_ns", rtt_ns);
    ("accept_ns", accept_ns);
  ]

let reset () = List.iter (fun (_, h) -> Obs.Histogram.reset h) all

let quantile_field h q =
  match Obs.Histogram.quantile h q with
  | Some v -> Printf.sprintf "%.1f" v
  | None -> "null"

let quantiles_json h =
  Printf.sprintf "{\"count\": %d, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
    (Obs.Histogram.count h) (quantile_field h 0.5) (quantile_field h 0.9)
    (quantile_field h 0.99)

let summary_json () =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %s" name (quantiles_json h)))
    all;
  Buffer.add_char b '}';
  Buffer.contents b
