type key = Inaddr.t * Inaddr.t * int * int (* src, dst, proto, ident *)

type entry = {
  mutable buf : Bytes.t;
  mutable covered : (int * int) list;  (* sorted disjoint (off, len) *)
  mutable total : int option;  (* known once the MF=0 fragment arrives *)
  timer : Sim.handle;  (* reusable; released when the entry dies *)
  hdr : Ipv4_header.t;  (* from the first fragment seen *)
}

type t = {
  host : Host.t;
  timeout : Simtime.t;
  entries : (key, entry) Hashtbl.t;
  mutable n_timeouts : int;
  mutable n_reassembled : int;
}

let create ~host ?(timeout = Simtime.ms 200.) () =
  {
    host;
    timeout;
    entries = Hashtbl.create 16;
    n_timeouts = 0;
    n_reassembled = 0;
  }

let pending t = Hashtbl.length t.entries
let timeouts t = t.n_timeouts
let reassembled t = t.n_reassembled

(* Merge (off, len) into a sorted disjoint interval list. *)
let rec merge intervals (off, len) =
  match intervals with
  | [] -> [ (off, len) ]
  | (o, l) :: rest ->
      if off + len < o then (off, len) :: intervals
      else if o + l < off then (o, l) :: merge rest (off, len)
      else
        (* overlap or adjacency: coalesce *)
        let lo = min o off and hi = max (o + l) (off + len) in
        merge rest (lo, hi - lo)

let complete entry =
  match entry.total with
  | None -> false
  | Some total -> (
      match entry.covered with
      | [ (0, n) ] -> n >= total
      | _ -> false)

let input t ~hdr chain =
  let key =
    ( hdr.Ipv4_header.src,
      hdr.Ipv4_header.dst,
      hdr.Ipv4_header.proto,
      hdr.Ipv4_header.ident )
  in
  let off = hdr.Ipv4_header.frag_offset * 8 in
  let len = Mbuf.chain_len chain in
  let entry =
    match Hashtbl.find_opt t.entries key with
    | Some e -> e
    | None ->
        let sim = t.host.Host.sim in
        let e =
          {
            buf = Bytes.create (max 4096 (off + len));
            covered = [];
            total = None;
            timer = Sim.timer sim ignore;
            hdr;
          }
        in
        Sim.set_fn e.timer (fun () ->
            if Hashtbl.mem t.entries key then begin
              Hashtbl.remove t.entries key;
              t.n_timeouts <- t.n_timeouts + 1
            end;
            Sim.release sim e.timer);
        Sim.rearm sim e.timer t.timeout;
        Hashtbl.add t.entries key e;
        e
  in
  (* Grow the buffer if needed. *)
  if off + len > Bytes.length entry.buf then begin
    let nb = Bytes.create (max (off + len) (2 * Bytes.length entry.buf)) in
    Bytes.blit entry.buf 0 nb 0 (Bytes.length entry.buf);
    entry.buf <- nb
  end;
  (* Copy the fragment in (charged by the caller); outboard tails are read
     through directly — the cost model treats the whole fragment as one
     host copy, which is what BSD reassembly did. *)
  Mbuf.copy_into_raw chain ~off:0 ~len entry.buf ~dst_off:off;
  Mbuf.free chain;
  entry.covered <- merge entry.covered (off, len);
  if not hdr.Ipv4_header.more_fragments then entry.total <- Some (off + len);
  if complete entry then begin
    Sim.release t.host.Host.sim entry.timer;
    Hashtbl.remove t.entries key;
    t.n_reassembled <- t.n_reassembled + 1;
    let total = Option.get entry.total in
    let payload = Mbuf.of_bytes ~pkthdr:true (Bytes.sub entry.buf 0 total) in
    let hdr =
      {
        entry.hdr with
        Ipv4_header.total_len = Ipv4_header.size + total;
        more_fragments = false;
        frag_offset = 0;
      }
    in
    Some (hdr, payload)
  end
  else None
