type stats = {
  echo_requests_rcvd : int;
  echo_replies_sent : int;
  echo_replies_rcvd : int;
  time_exceeded_sent : int;
  unreachable_sent : int;
  errors_rcvd : int;
  bad_checksums : int;
}

type t = {
  ip : Ipv4.t;
  host : Host.t;
  mutable pending : (int * int * Simtime.t * (seq:int -> rtt:Simtime.t -> unit)) list;
      (* (ident, seq, sent_at, callback) *)
  mutable next_seq : int;
  mutable on_error :
    (kind:[ `Unreachable | `Time_exceeded ] -> src:Inaddr.t -> unit) option;
  mutable s : stats;
}

let type_echo_reply = 0
let type_unreachable = 3
let type_time_exceeded = 11
let type_echo_request = 8

let header_size = 8

let stats t = t.s
let on_error t f = t.on_error <- Some f

(* Build an ICMP message as a regular mbuf with a correct checksum (ICMP
   checksums cover the whole message, no pseudo-header). *)
let build ~typ ~code ~word ~payload =
  let n = header_size + Bytes.length payload in
  let b = Bytes.create n in
  Bytes.set_uint8 b 0 typ;
  Bytes.set_uint8 b 1 code;
  Bytes.set_uint16_be b 2 0;
  Bytes.set_int32_be b 4 (Int32.of_int word);
  Bytes.blit payload 0 b header_size (Bytes.length payload);
  let csum = Inet_csum.finish (Inet_csum.of_bytes b) in
  Bytes.set_uint16_be b 2 csum;
  Mbuf.of_bytes ~pkthdr:true b

let send t ~dst ~typ ~code ~word ~payload =
  let m = build ~typ ~code ~word ~payload in
  (* An in-kernel sender: per-packet protocol cost plus the (tiny) host
     checksum, charged to the kernel. *)
  let csum =
    Memcost.checksum_read t.host.Host.profile ~locality:Memcost.Cold
      (Mbuf.chain_len m)
  in
  let cost = Memcost.per_packet t.host.Host.profile + csum in
  Host.in_proc t.host ~proc:"kernel.icmp" ~site:Cpu.Header
    ~split:(Cpu.Checksum, csum) cost (fun () ->
      match Ipv4.output t.ip ~proto:Ipv4_header.proto_icmp ~dst m with
      | Ok _ -> ()
      | Error _ -> ())

let ping t ~dst ?(size = 56) ?(ident = 0x1234) ~on_reply () =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let payload = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set_uint8 payload i (i land 0xff)
  done;
  t.pending <-
    (ident, seq, Sim.now t.host.Host.sim, on_reply) :: t.pending;
  send t ~dst ~typ:type_echo_request ~code:0
    ~word:((ident lsl 16) lor (seq land 0xffff))
    ~payload

(* Flatten an incoming message to host bytes.  Outboard tails (huge echo
   payloads through the CAB) are pulled in with a charged copy — the §5
   conversion for this in-kernel consumer. *)
let flatten t m k =
  let n = Mbuf.chain_len m in
  let has_outboard = List.mem Mbuf.K_wcab (Mbuf.chain_kinds m) in
  let b = Bytes.create n in
  Mbuf.copy_into_raw m ~off:0 ~len:n b ~dst_off:0;
  Mbuf.free m;
  if has_outboard then
    Host.in_proc t.host ~proc:"kernel.icmp" ~site:Cpu.Copy
      (Memcost.copy t.host.Host.profile ~locality:Memcost.Cold n)
      (fun () -> k b)
  else k b

let input t ~src ~dst:_ m =
  flatten t m (fun b ->
      if Bytes.length b < header_size then ()
      else if not (Inet_csum.is_valid (Inet_csum.of_bytes b)) then
        t.s <- { t.s with bad_checksums = t.s.bad_checksums + 1 }
      else begin
        let typ = Bytes.get_uint8 b 0 in
        let word = Int32.to_int (Bytes.get_int32_be b 4) land 0xffffffff in
        if typ = type_echo_request then begin
          t.s <-
            { t.s with echo_requests_rcvd = t.s.echo_requests_rcvd + 1 };
          let payload =
            Bytes.sub b header_size (Bytes.length b - header_size)
          in
          t.s <- { t.s with echo_replies_sent = t.s.echo_replies_sent + 1 };
          send t ~dst:src ~typ:type_echo_reply ~code:0 ~word ~payload
        end
        else if typ = type_echo_reply then begin
          t.s <- { t.s with echo_replies_rcvd = t.s.echo_replies_rcvd + 1 };
          let ident = word lsr 16 and seq = word land 0xffff in
          let rec pick acc = function
            | [] -> (None, List.rev acc)
            | (i, s', t0, cb) :: rest when i = ident && s' land 0xffff = seq
              ->
                (Some (s', t0, cb), List.rev_append acc rest)
            | e :: rest -> pick (e :: acc) rest
          in
          let hit, rest = pick [] t.pending in
          t.pending <- rest;
          match hit with
          | Some (s', t0, cb) ->
              cb ~seq:s' ~rtt:(Simtime.sub (Sim.now t.host.Host.sim) t0)
          | None -> ()
        end
        else if typ = type_unreachable || typ = type_time_exceeded then begin
          t.s <- { t.s with errors_rcvd = t.s.errors_rcvd + 1 };
          match t.on_error with
          | Some f ->
              f
                ~kind:
                  (if typ = type_unreachable then `Unreachable
                   else `Time_exceeded)
                ~src
          | None -> ()
        end
      end)

let create ~ip =
  let t =
    {
      ip;
      host = Ipv4.host ip;
      pending = [];
      next_seq = 0;
      on_error = None;
      s =
        {
          echo_requests_rcvd = 0;
          echo_replies_sent = 0;
          echo_replies_rcvd = 0;
          time_exceeded_sent = 0;
          unreachable_sent = 0;
          errors_rcvd = 0;
          bad_checksums = 0;
        };
    }
  in
  Ipv4.register_protocol ip ~proto:Ipv4_header.proto_icmp
    (fun ~src ~dst m -> input t ~src ~dst m);
  Ipv4.set_error_hook ip (fun ~reason ~orig_src ~orig_head ->
      let typ, update =
        match reason with
        | `Ttl ->
            ( type_time_exceeded,
              fun s -> { s with time_exceeded_sent = s.time_exceeded_sent + 1 }
            )
        | `No_route ->
            ( type_unreachable,
              fun s -> { s with unreachable_sent = s.unreachable_sent + 1 } )
      in
      t.s <- update t.s;
      send t ~dst:orig_src ~typ ~code:0 ~word:0 ~payload:orig_head);
  t
