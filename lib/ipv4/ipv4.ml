type handler = src:Inaddr.t -> dst:Inaddr.t -> Mbuf.t -> unit

type stats = {
  received : int;
  delivered : int;
  forwarded : int;
  dropped_no_route : int;
  dropped_bad_header : int;
  dropped_no_proto : int;
  dropped_ttl : int;
  sent : int;
  fragments_sent : int;
  fragments_rcvd : int;
  reassembled : int;
}

type t = {
  host : Host.t;
  routing : Routing.t;
  mutable handlers : (int * handler) list;
  mutable ident : int;
  mutable forwarding : bool;
  mutable s_received : int;
  mutable s_delivered : int;
  mutable s_forwarded : int;
  mutable s_no_route : int;
  mutable s_bad_header : int;
  mutable s_no_proto : int;
  mutable s_ttl : int;
  mutable s_sent : int;
  mutable error_hook :
    (reason:[ `Ttl | `No_route ] ->
    orig_src:Inaddr.t ->
    orig_head:Bytes.t ->
    unit)
    option;
  frag : Ip_frag.t;
  mutable s_frags_sent : int;
  mutable s_frags_rcvd : int;
  mutable hdr_memo : hdr_memo option;
}

(* Steady-state flow memo: a connection's packets repeat the same
   (src, dst, proto, tos, ttl), so the header prototype (total_len,
   ident, flags and checksum fields zero) and its checksum base are
   cached — per packet the header cost is two 16-bit patches and an
   incremental [finish (base + len + ident)] instead of a fresh encode
   with a full 20-byte checksum pass. *)
and hdr_memo = {
  p_src : Inaddr.t;
  p_dst : Inaddr.t;
  p_proto : int;
  p_tos : int;
  p_ttl : int;
  p_tpl : Bytes.t;
  p_base : Inet_csum.sum;
}

let create ~host =
  {
    host;
    routing = Routing.create ();
    handlers = [];
    ident = 0;
    forwarding = false;
    s_received = 0;
    s_delivered = 0;
    s_forwarded = 0;
    s_no_route = 0;
    s_bad_header = 0;
    s_no_proto = 0;
    s_ttl = 0;
    s_sent = 0;
    error_hook = None;
    frag = Ip_frag.create ~host ();
    s_frags_sent = 0;
    s_frags_rcvd = 0;
    hdr_memo = None;
  }

let hdr_template t ~src ~dst ~proto ~tos ~ttl =
  match t.hdr_memo with
  | Some m
    when Inaddr.equal m.p_src src && Inaddr.equal m.p_dst dst
         && m.p_proto = proto && m.p_tos = tos && m.p_ttl = ttl ->
      m
  | Some _ | None ->
      let tpl = Bytes.make Ipv4_header.size '\000' in
      Bytes.set_uint8 tpl 0 0x45 (* version 4, ihl 5 *);
      Bytes.set_uint8 tpl 1 tos;
      (* total_len (2), ident (4), flags (6), checksum (10) stay zero *)
      Bytes.set_uint8 tpl 8 ttl;
      Bytes.set_uint8 tpl 9 proto;
      Bytes.set_int32_be tpl 12 src;
      Bytes.set_int32_be tpl 16 dst;
      let m =
        {
          p_src = src;
          p_dst = dst;
          p_proto = proto;
          p_tos = tos;
          p_ttl = ttl;
          p_tpl = tpl;
          p_base = Inet_csum.of_bytes tpl;
        }
      in
      t.hdr_memo <- Some m;
      m

let host t = t.host
let routing t = t.routing
let set_forwarding t v = t.forwarding <- v

let register_protocol t ~proto h =
  if List.mem_assoc proto t.handlers then
    invalid_arg (Printf.sprintf "Ipv4: protocol %d already registered" proto);
  t.handlers <- (proto, h) :: t.handlers

let is_local t addr =
  Inaddr.equal addr Inaddr.loopback
  || List.exists
       (fun (i : Netif.t) -> Inaddr.equal i.Netif.addr addr)
       t.host.Host.ifaces

let route_for t ~dst = Routing.lookup t.routing dst

let next_ident t =
  t.ident <- (t.ident + 1) land 0xffff;
  t.ident

let output t ~proto ?src ~dst ?(tos = 0) ?(ttl = 64) seg =
  match Routing.lookup t.routing dst with
  | None ->
      t.s_no_route <- t.s_no_route + 1;
      Mbuf.free seg;
      Error "no route to host"
  | Some (iface, next_hop) ->
      let src = match src with Some s -> s | None -> iface.Netif.addr in
      let seg_len = Mbuf.pkt_len seg in
      let total_len = Ipv4_header.size + seg_len in
      let emit_one ~ident ~frag_offset ~more_fragments piece =
        let hdr =
          {
            (Ipv4_header.make ~tos ~ident ~ttl ~proto ~src ~dst
               ~total_len:(Ipv4_header.size + Mbuf.pkt_len piece)
               ())
            with
            Ipv4_header.frag_offset;
            more_fragments;
          }
        in
        let pkt = Mbuf.prepend piece Ipv4_header.size in
        let hbytes = Bytes.create Ipv4_header.size in
        Ipv4_header.encode hdr hbytes ~off:0;
        Mbuf.copy_from pkt ~off:0 ~len:Ipv4_header.size hbytes ~src_off:0;
        t.s_sent <- t.s_sent + 1;
        iface.Netif.output iface pkt ~next_hop
      in
      if total_len <= iface.Netif.mtu then begin
        (* Carry the transport offload record straight through. *)
        let ident = next_ident t in
        let tx_csum =
          match seg.Mbuf.pkthdr with Some ph -> ph.Mbuf.tx_csum | None -> None
        in
        let on_outboard =
          match seg.Mbuf.pkthdr with
          | Some ph -> ph.Mbuf.on_outboard
          | None -> None
        in
        (* Unfragmented packet: flags field is zero, so the cached
           prototype needs only total_len, ident and the incrementally
           derived header checksum patched in. *)
        let memo = hdr_template t ~src ~dst ~proto ~tos ~ttl in
        let hbytes = memo.p_tpl in
        Bytes.set_uint16_be hbytes 2 total_len;
        Bytes.set_uint16_be hbytes 4 ident;
        let csum =
          Inet_csum.finish
            (Inet_csum.add_u16 (Inet_csum.add_u16 memo.p_base total_len)
               ident)
        in
        Bytes.set_uint16_be hbytes 10 csum;
        let pkt = Mbuf.prepend seg Ipv4_header.size in
        Mbuf.copy_from pkt ~off:0 ~len:Ipv4_header.size hbytes ~src_off:0;
        (match pkt.Mbuf.pkthdr with
        | Some ph ->
            ph.Mbuf.tx_csum <- tx_csum;
            ph.Mbuf.on_outboard <- on_outboard
        | None -> ());
        t.s_sent <- t.s_sent + 1;
        iface.Netif.output iface pkt ~next_hop;
        Ok iface
      end
      else begin
        (* Fragment: share-semantics slices of the payload on 8-byte
           boundaries.  Offloaded checksums cannot span fragments. *)
        let per = (iface.Netif.mtu - Ipv4_header.size) / 8 * 8 in
        if per <= 0 then begin
          Mbuf.free seg;
          Error "interface mtu too small to fragment"
        end
        else begin
          let ident = next_ident t in
          let rec go off =
            if off < seg_len then begin
              let len = min per (seg_len - off) in
              let piece = Mbuf.copy_range seg ~off ~len in
              t.s_frags_sent <- t.s_frags_sent + 1;
              emit_one ~ident ~frag_offset:(off / 8)
                ~more_fragments:(off + len < seg_len)
                piece;
              go (off + len)
            end
          in
          go 0;
          Mbuf.free seg;
          Ok iface
        end
      end

let deliver_local t ~src ~dst ~proto pkt =
  match List.assoc_opt proto t.handlers with
  | None ->
      t.s_no_proto <- t.s_no_proto + 1;
      Mbuf.free pkt
  | Some h ->
      t.s_delivered <- t.s_delivered + 1;
      h ~src ~dst pkt

let notify_error t reason (hdr : Ipv4_header.t) pkt =
  match t.error_hook with
  | None -> ()
  | Some hook ->
      let n = min (Ipv4_header.size + 8) (Mbuf.pkt_len pkt) in
      let head = Bytes.create n in
      Mbuf.copy_into pkt ~off:0 ~len:n head ~dst_off:0;
      hook ~reason ~orig_src:hdr.Ipv4_header.src ~orig_head:head

let forward t pkt (hdr : Ipv4_header.t) =
  if hdr.Ipv4_header.ttl <= 1 then begin
    t.s_ttl <- t.s_ttl + 1;
    notify_error t `Ttl hdr pkt;
    Mbuf.free pkt
  end
  else
    match Routing.lookup t.routing hdr.Ipv4_header.dst with
    | None ->
        t.s_no_route <- t.s_no_route + 1;
        notify_error t `No_route hdr pkt;
        Mbuf.free pkt
    | Some (iface, next_hop) ->
        if Mbuf.pkt_len pkt > iface.Netif.mtu then begin
          (* No fragmentation on the forwarding path in this stack. *)
          t.s_no_route <- t.s_no_route + 1;
          Mbuf.free pkt
        end
        else begin
          (* Rewrite TTL and header checksum in place. *)
          let hdr = { hdr with Ipv4_header.ttl = hdr.Ipv4_header.ttl - 1 } in
          let hbytes = Bytes.create Ipv4_header.size in
          Ipv4_header.encode hdr hbytes ~off:0;
          Mbuf.copy_from pkt ~off:0 ~len:Ipv4_header.size hbytes ~src_off:0;
          t.s_forwarded <- t.s_forwarded + 1;
          (* Forwarding work is charged here: one per-packet cost. *)
          Host.in_proc t.host ~proc:"kernel.forward" ~site:Cpu.Header
            (Memcost.per_packet t.host.Host.profile) (fun () ->
              iface.Netif.output iface pkt ~next_hop)
        end

let input t (_iface : Netif.t) pkt =
  t.s_received <- t.s_received + 1;
  let pkt = Mbuf.pullup pkt Ipv4_header.size in
  (* After pullup the header is contiguous: decode it in place. *)
  let hbytes, hoff =
    match Mbuf.view pkt ~off:0 ~len:Ipv4_header.size with
    | Some (b, pos) -> (b, pos)
    | None ->
        let b = Bytes.create Ipv4_header.size in
        Mbuf.copy_into pkt ~off:0 ~len:Ipv4_header.size b ~dst_off:0;
        (b, 0)
  in
  match Ipv4_header.decode hbytes ~off:hoff with
  | Error _ ->
      t.s_bad_header <- t.s_bad_header + 1;
      Mbuf.free pkt
  | Ok hdr ->
      if Mbuf.pkt_len pkt < hdr.Ipv4_header.total_len then begin
        t.s_bad_header <- t.s_bad_header + 1;
        Mbuf.free pkt
      end
      else begin
        (* Trim link-layer padding beyond the IP total length. *)
        let excess = Mbuf.pkt_len pkt - hdr.Ipv4_header.total_len in
        if excess > 0 then Mbuf.adj_tail pkt excess;
        if
          is_local t hdr.Ipv4_header.dst
          && (hdr.Ipv4_header.more_fragments
             || hdr.Ipv4_header.frag_offset > 0)
        then begin
          (* A fragment for us: reassemble.  The copy into the reassembly
             buffer is host work (classic BSD slow path). *)
          Mbuf.adj_head pkt Ipv4_header.size;
          t.s_frags_rcvd <- t.s_frags_rcvd + 1;
          let cost =
            Memcost.copy t.host.Host.profile ~locality:Memcost.Cold
              (Mbuf.pkt_len pkt)
          in
          Host.in_intr t.host ~site:Cpu.Copy cost (fun () ->
              match Ip_frag.input t.frag ~hdr pkt with
              | None -> ()
              | Some (hdr, datagram) ->
                  deliver_local t ~src:hdr.Ipv4_header.src
                    ~dst:hdr.Ipv4_header.dst ~proto:hdr.Ipv4_header.proto
                    datagram)
        end
        else if is_local t hdr.Ipv4_header.dst then begin
          Mbuf.adj_head pkt Ipv4_header.size;
          (* Keep the hardware checksum record relative to what remains of
             the packet: the engine start moves up with the stripped
             header (§4.3 receive adjustment). *)
          (match pkt.Mbuf.pkthdr with
          | Some ({ Mbuf.rx_csum = Some rx; _ } as ph) ->
              ph.Mbuf.rx_csum <-
                Some
                  (Csum_offload.make_rx
                     ~engine_sum:rx.Csum_offload.engine_sum
                     ~rx_start:(rx.Csum_offload.rx_start - Ipv4_header.size))
          | Some _ | None -> ());
          deliver_local t ~src:hdr.Ipv4_header.src ~dst:hdr.Ipv4_header.dst
            ~proto:hdr.Ipv4_header.proto pkt
        end
        else if t.forwarding then forward t pkt hdr
        else begin
          t.s_no_route <- t.s_no_route + 1;
          Mbuf.free pkt
        end
      end

let set_error_hook t hook = t.error_hook <- Some hook

let stats t =
  {
    received = t.s_received;
    delivered = t.s_delivered;
    forwarded = t.s_forwarded;
    dropped_no_route = t.s_no_route;
    dropped_bad_header = t.s_bad_header;
    dropped_no_proto = t.s_no_proto;
    dropped_ttl = t.s_ttl;
    sent = t.s_sent;
    fragments_sent = t.s_frags_sent;
    fragments_rcvd = t.s_frags_rcvd;
    reassembled = Ip_frag.reassembled t.frag;
  }
