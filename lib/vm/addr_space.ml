(* Process-wide wired-page tally across every address space: the soak
   harness diffs this gauge against its baseline to prove pin/unpin
   balance after a fault storm. *)
let total_pinned = ref 0

let () =
  Obs.gauge ~section:"addr_space" ~name:"pinned_pages" (fun () ->
      float_of_int !total_pinned)

let agg_pin_failures = Obs.counter ~section:"addr_space" ~name:"pin_failures"

type t = {
  profile : Host_profile.t;
  name : string;
  mutable brk : int;  (* next free virtual address *)
  pins : (int, int) Hashtbl.t;  (* page index -> pin refcount *)
  mutable pin_ops : int;
}

let create ~profile ~name =
  {
    profile;
    name;
    (* Start away from address zero so a vaddr of 0 in a test is clearly a
       bug, and on a page boundary. *)
    brk = 16 * profile.Host_profile.page_size;
    pins = Hashtbl.create 64;
    pin_ops = 0;
  }

let name t = t.name
let profile t = t.profile

let alloc t ?align len =
  let align =
    match align with Some a -> a | None -> t.profile.Host_profile.page_size
  in
  if align <= 0 then invalid_arg "Addr_space.alloc: align must be positive";
  let base = Page.round_up ~page_size:align t.brk in
  t.brk <- base + len;
  Region.create ~vaddr:base len

let alloc_at_offset t ~page_offset len =
  let page_size = t.profile.Host_profile.page_size in
  if page_offset < 0 || page_offset >= page_size then
    invalid_arg "Addr_space.alloc_at_offset: offset out of page";
  let base = Page.round_up ~page_size t.brk + page_offset in
  t.brk <- base + len;
  Region.create ~vaddr:base len

let pages_of t region =
  let page_size = t.profile.Host_profile.page_size in
  let base = Region.vaddr region and len = Region.length region in
  if len = 0 then []
  else
    let first = base / page_size and last = (base + len - 1) / page_size in
    List.init (last - first + 1) (fun i -> first + i)

let pin t region =
  let pages = pages_of t region in
  List.iter
    (fun p ->
      let c = Option.value ~default:0 (Hashtbl.find_opt t.pins p) in
      if c = 0 then incr total_pinned;
      Hashtbl.replace t.pins p (c + 1))
    pages;
  t.pin_ops <- t.pin_ops + 1;
  Memcost.pin t.profile ~pages:(List.length pages)

let try_pin t region =
  if Fault.fire "vm.pin_fail" then begin
    Obs.Counter.incr agg_pin_failures;
    Error `Pin_exhausted
  end
  else Ok (pin t region)

let unpin t region =
  let pages = pages_of t region in
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.pins p with
      | None | Some 0 ->
          invalid_arg
            (Printf.sprintf "Addr_space.unpin(%s): page %d not pinned" t.name p)
      | Some 1 ->
          decr total_pinned;
          Hashtbl.remove t.pins p
      | Some c -> Hashtbl.replace t.pins p (c - 1))
    pages;
  Memcost.unpin t.profile ~pages:(List.length pages)

let map_into_kernel t region =
  let pages = List.length (pages_of t region) in
  Memcost.map t.profile ~pages

let is_pinned t region =
  List.for_all
    (fun p ->
      match Hashtbl.find_opt t.pins p with
      | Some c when c > 0 -> true
      | Some _ | None -> false)
    (pages_of t region)

let pinned_pages t =
  Hashtbl.fold (fun _ c acc -> if c > 0 then acc + 1 else acc) t.pins 0

let pin_count t = t.pin_ops
