(** Application (or kernel) address spaces.

    An address space hands out regions of simulated memory at controlled
    virtual addresses and tracks which pages are pinned for DMA.  Pin,
    unpin and map return the CPU cost of the operation (Table 2 of the
    paper); callers charge that cost to the right process on the host CPU.

    Pinning is reference counted per page: overlapping buffers or repeated
    pins of the same page keep it resident until every pin is released. *)

type t

val create : profile:Host_profile.t -> name:string -> t

val name : t -> string
val profile : t -> Host_profile.t

val alloc : t -> ?align:int -> int -> Region.t
(** Allocates a region of the given size.  [align] defaults to the page
    size, matching malloc's behaviour for large blocks (§4.5: "compilers
    and malloc() always align the data structures they allocate"). *)

val alloc_at_offset : t -> page_offset:int -> int -> Region.t
(** Allocates a region whose base is deliberately misaligned by
    [page_offset] bytes into a fresh page — used to exercise the §4.5
    unaligned-access fallback. *)

val pin : t -> Region.t -> Simtime.t
(** Pins every page the region touches; returns the CPU cost
    (35 + 29 n us on the alpha400). *)

val try_pin : t -> Region.t -> (Simtime.t, [ `Pin_exhausted ]) result
(** Fallible pin for datapath callers: the fault site ["vm.pin_fail"]
    models the kernel refusing to wire more pages (resident-set limit,
    fragmentation).  On [Error] nothing is pinned and nothing is charged;
    the caller degrades to the copying path.  Failures are counted in the
    Obs counter [addr_space.pin_failures]. *)

val unpin : t -> Region.t -> Simtime.t
val map_into_kernel : t -> Region.t -> Simtime.t

val is_pinned : t -> Region.t -> bool
(** True when every page of the region is currently pinned. *)

val pinned_pages : t -> int
(** Number of distinct pages currently pinned in this space. *)

val pin_count : t -> int
(** Total number of pin operations performed (for tests/benchmarks). *)
