(** Pinned-buffer cache with lazy unpinning (§4.4.1).

    "For applications that reuse the same set of buffers repeatedly, this
    overhead can be avoided by keeping the buffers pinned and mapped so the
    overhead is amortized over several IO operations; buffers can be
    unpinned lazily, thus limiting the number of pages that an application
    can have pinned at one time."

    [acquire] returns the CPU cost of making the buffer DMA-ready: zero
    work on a hit, pin+map on a miss.  [release] is free — the buffer stays
    pinned in the cache.  When the pinned-page budget is exceeded the least
    recently used buffer is unpinned (and that unpin cost is charged to the
    operation that caused the eviction). *)

type t

val create : space:Addr_space.t -> max_pages:int -> t

val acquire : t -> Region.t -> Simtime.t
(** Cost of ensuring the region is pinned and mapped. *)

val try_acquire :
  t -> Region.t -> (Simtime.t, [ `Pin_exhausted of Simtime.t ]) result
(** Fallible [acquire] for datapath callers.  Hits never fail (the buffer
    is already wired).  On a miss the pin may fail at the
    ["vm.pin_fail"] fault site; the [Error] carries the eviction cost
    already incurred (the kernel freed pages before refusing to wire the
    new buffer), the entry is {e not} inserted, and the caller is expected
    to degrade to the copying path.  Failures are counted per-instance
    ({!pin_failures}) and in the Obs counter [pin_cache.pin_failures]. *)

val release : t -> Region.t -> Simtime.t
(** Lazy: returns zero cost and leaves the buffer pinned. *)

val is_resident : t -> Region.t -> bool
(** Warmth probe: whether [acquire] would hit without any pin/map work.
    Does not touch the LRU clock, so policy layers can ask without
    distorting eviction order. *)

val flush : t -> Simtime.t
(** Unpins everything; returns the total unpin cost. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val pin_failures : t -> int
(** Number of {!try_acquire} misses that failed at the pin stage. *)

val resident_pages : t -> int
