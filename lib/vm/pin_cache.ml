(* Process-wide aggregates across every pin-cache instance, published in
   the central registry (per-instance counters stay on [t]). *)
let agg_hits = Obs.counter ~section:"pin_cache" ~name:"hits"
let agg_misses = Obs.counter ~section:"pin_cache" ~name:"misses"
let agg_evictions = Obs.counter ~section:"pin_cache" ~name:"evictions"
let agg_pin_failures = Obs.counter ~section:"pin_cache" ~name:"pin_failures"

type entry = {
  region : Region.t;
  pages : int;
  mutable last_used : int;  (* LRU stamp *)
}

type t = {
  space : Addr_space.t;
  max_pages : int;
  table : (int * int, entry) Hashtbl.t;  (* (vaddr, len) -> entry *)
  mutable clock : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable pin_failures : int;
}

let create ~space ~max_pages =
  {
    space;
    max_pages;
    table = Hashtbl.create 16;
    clock = 0;
    resident = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    pin_failures = 0;
  }

let key region = (Region.vaddr region, Region.length region)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | None -> Some e
        | Some best -> if e.last_used < best.last_used then Some e else acc)
      t.table None
  in
  match victim with
  | None -> Simtime.zero
  | Some e ->
      Hashtbl.remove t.table (key e.region);
      t.resident <- t.resident - e.pages;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr agg_evictions;
      Addr_space.unpin t.space e.region

let acquire t region =
  match Hashtbl.find_opt t.table (key region) with
  | Some e ->
      e.last_used <- tick t;
      t.hits <- t.hits + 1;
      Obs.Counter.incr agg_hits;
      Simtime.zero
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr agg_misses;
      let pages =
        Region.pages
          ~page_size:(Addr_space.profile t.space).Host_profile.page_size
          region
      in
      (* Make room first: lazy unpinning bounds total pinned pages. *)
      let evict_cost = ref Simtime.zero in
      while t.resident > 0 && t.resident + pages > t.max_pages do
        evict_cost := Simtime.add !evict_cost (evict_lru t)
      done;
      let pin_cost = Addr_space.pin t.space region in
      let map_cost = Addr_space.map_into_kernel t.space region in
      let e = { region; pages; last_used = tick t } in
      Hashtbl.replace t.table (key region) e;
      t.resident <- t.resident + pages;
      Simtime.add !evict_cost (Simtime.add pin_cost map_cost)

let try_acquire t region =
  match Hashtbl.find_opt t.table (key region) with
  | Some e ->
      (* A resident buffer is already wired: hits never consult the fault
         site, the injected failure models the *pin* syscall refusing. *)
      e.last_used <- tick t;
      t.hits <- t.hits + 1;
      Obs.Counter.incr agg_hits;
      Ok Simtime.zero
  | None -> (
      t.misses <- t.misses + 1;
      Obs.Counter.incr agg_misses;
      let pages =
        Region.pages
          ~page_size:(Addr_space.profile t.space).Host_profile.page_size
          region
      in
      let evict_cost = ref Simtime.zero in
      while t.resident > 0 && t.resident + pages > t.max_pages do
        evict_cost := Simtime.add !evict_cost (evict_lru t)
      done;
      match Addr_space.try_pin t.space region with
      | Error `Pin_exhausted ->
          t.pin_failures <- t.pin_failures + 1;
          Obs.Counter.incr agg_pin_failures;
          (* Eviction work already done stays done (and charged): the
             kernel freed pages before discovering it could not wire the
             new buffer. *)
          Error (`Pin_exhausted !evict_cost)
      | Ok pin_cost ->
          let map_cost = Addr_space.map_into_kernel t.space region in
          let e = { region; pages; last_used = tick t } in
          Hashtbl.replace t.table (key region) e;
          t.resident <- t.resident + pages;
          Ok (Simtime.add !evict_cost (Simtime.add pin_cost map_cost)))

let release _t _region = Simtime.zero

let is_resident t region = Hashtbl.mem t.table (key region)

let flush t =
  let cost =
    Hashtbl.fold
      (fun _ e acc -> Simtime.add acc (Addr_space.unpin t.space e.region))
      t.table Simtime.zero
  in
  Hashtbl.reset t.table;
  t.resident <- 0;
  cost

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let pin_failures t = t.pin_failures
let resident_pages t = t.resident
