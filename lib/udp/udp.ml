type endpoint = { addr : Inaddr.t; port : int }

type stats = {
  dgrams_sent : int;
  dgrams_rcvd : int;
  bytes_sent : int;
  bytes_rcvd : int;
  csum_offloaded_tx : int;
  csum_host_tx : int;
  csum_hw_verified_rx : int;
  csum_host_verified_rx : int;
  csum_failures_rx : int;
  dropped_no_port : int;
  dropped_too_big : int;
}

(* Steady-state flow memo: a datagram stream repeats the same
   (src, dst, ports) endpoint pair, so the preencoded header template
   and the len-0 pseudo-header seed are cached and revalidated by key —
   per-datagram work is two 16-bit patches and one [add_u16]. *)
type flow = {
  f_src : Inaddr.t;
  f_dst : Inaddr.t;
  f_sport : int;
  f_dport : int;
  f_tpl : Bytes.t;  (* ports preencoded; length/csum patched per dgram *)
  f_base : Inet_csum.sum;  (* pseudo-header sum with len = 0 *)
}

type t = {
  ip : Ipv4.t;
  hst : Host.t;
  single_copy : bool;
  mutable ports : (int * (src:endpoint -> Mbuf.t -> unit)) list;
  mutable s : stats;
  mutable flow : flow option;
}

let zero =
  {
    dgrams_sent = 0;
    dgrams_rcvd = 0;
    bytes_sent = 0;
    bytes_rcvd = 0;
    csum_offloaded_tx = 0;
    csum_host_tx = 0;
    csum_hw_verified_rx = 0;
    csum_host_verified_rx = 0;
    csum_failures_rx = 0;
    dropped_no_port = 0;
    dropped_too_big = 0;
  }

let stats t = t.s

let verify t ~src ~dst dgram =
  let len = Mbuf.pkt_len dgram in
  let pseudo =
    Inet_csum.pseudo_header ~src ~dst ~proto:Ipv4_header.proto_udp ~len
  in
  let field_raw =
    match Mbuf.view dgram ~off:Udp_header.csum_field_offset ~len:2 with
    | Some (b, pos) -> Bytes.get_uint16_be b pos
    | None ->
        let b = Bytes.create Udp_header.size in
        Mbuf.copy_into dgram ~off:0 ~len:Udp_header.size b ~dst_off:0;
        Bytes.get_uint16_be b Udp_header.csum_field_offset
  in
  if field_raw = 0 then (true, 0) (* sender disabled checksumming *)
  else
    match dgram.Mbuf.pkthdr with
    | Some { Mbuf.rx_csum = Some rx; _ } ->
        let skipped_len = max 0 rx.Csum_offload.rx_start in
        let skipped =
          if skipped_len = 0 then Inet_csum.zero
          else Mbuf.checksum dgram ~off:0 ~len:(min skipped_len len)
        in
        let ok = Csum_offload.rx_verify rx ~skipped ~pseudo in
        t.s <-
          (if ok then
             { t.s with csum_hw_verified_rx = t.s.csum_hw_verified_rx + 1 }
           else { t.s with csum_failures_rx = t.s.csum_failures_rx + 1 });
        (ok, 0)
    | Some _ | None ->
        let sum = Mbuf.checksum dgram ~off:0 ~len in
        let ok = Inet_csum.is_valid (Inet_csum.add pseudo sum) in
        let cost =
          Memcost.checksum_read t.hst.Host.profile ~locality:Memcost.Cold len
        in
        t.s <-
          (if ok then
             { t.s with csum_host_verified_rx = t.s.csum_host_verified_rx + 1 }
           else { t.s with csum_failures_rx = t.s.csum_failures_rx + 1 });
        (ok, cost)

let input t ~src ~dst dgram =
  let dgram = Mbuf.pullup dgram Udp_header.size in
  (* After pullup the header is contiguous: decode it in place. *)
  let hbytes, hoff =
    match Mbuf.view dgram ~off:0 ~len:Udp_header.size with
    | Some (b, pos) -> (b, pos)
    | None ->
        let b = Bytes.create Udp_header.size in
        Mbuf.copy_into dgram ~off:0 ~len:Udp_header.size b ~dst_off:0;
        (b, 0)
  in
  match Udp_header.decode hbytes ~off:hoff ~len:Udp_header.size with
  | Error _ -> Mbuf.free dgram
  | Ok (hdr, _) -> (
      match List.assoc_opt hdr.Udp_header.dst_port t.ports with
      | None ->
          t.s <- { t.s with dropped_no_port = t.s.dropped_no_port + 1 };
          Mbuf.free dgram
      | Some handler ->
          let ok, csum_cost = verify t ~src ~dst dgram in
          if not ok then Mbuf.free dgram
          else begin
            let cost =
              Memcost.per_packet t.hst.Host.profile + csum_cost
            in
            Host.in_intr t.hst ~site:Cpu.Header
              ~split:(Cpu.Checksum, csum_cost) cost (fun () ->
                Mbuf.adj_head dgram Udp_header.size;
                t.s <-
                  {
                    t.s with
                    dgrams_rcvd = t.s.dgrams_rcvd + 1;
                    bytes_rcvd = t.s.bytes_rcvd + Mbuf.chain_len dgram;
                  };
                handler
                  ~src:{ addr = src; port = hdr.Udp_header.src_port }
                  dgram)
          end)

let create ~ip ~single_copy =
  let t =
    { ip; hst = Ipv4.host ip; single_copy; ports = []; s = zero; flow = None }
  in
  Ipv4.register_protocol ip ~proto:Ipv4_header.proto_udp
    (fun ~src ~dst dgram -> input t ~src ~dst dgram);
  t

let bind t ~port handler =
  if List.mem_assoc port t.ports then
    invalid_arg (Printf.sprintf "Udp.bind: port %d in use" port);
  t.ports <- (port, handler) :: t.ports

let unbind t ~port = t.ports <- List.remove_assoc port t.ports

let sendto t ~proc ?(checksum = true) ~src_port ~dst payload =
  match Ipv4.route_for t.ip ~dst:dst.addr with
  | None ->
      Mbuf.free payload;
      Error "no route to host"
  | Some (iface, _) ->
      let payload_len = Mbuf.chain_len payload in
      let dgram_len = Udp_header.size + payload_len in
      if dgram_len > 65507 then begin
        Mbuf.free payload;
        t.s <- { t.s with dropped_too_big = t.s.dropped_too_big + 1 };
        Error "datagram exceeds the UDP maximum"
      end
      else begin
        (* A datagram that will fragment cannot use the checksum engine:
           the transport checksum spans fragments (Ipv4.output note). *)
        let will_fragment =
          dgram_len + Ipv4_header.size > iface.Netif.mtu
        in
        let src = iface.Netif.addr in
        (* Hit or refill the flow memo for this endpoint pair. *)
        let fl =
          match t.flow with
          | Some f
            when Inaddr.equal f.f_src src
                 && Inaddr.equal f.f_dst dst.addr
                 && f.f_sport = src_port && f.f_dport = dst.port ->
              f
          | Some _ | None ->
              let tpl = Bytes.make Udp_header.size '\000' in
              Bytes.set_uint16_be tpl 0 src_port;
              Bytes.set_uint16_be tpl 2 dst.port;
              let f =
                {
                  f_src = src;
                  f_dst = dst.addr;
                  f_sport = src_port;
                  f_dport = dst.port;
                  f_tpl = tpl;
                  f_base =
                    Inet_csum.pseudo_header ~src ~dst:dst.addr
                      ~proto:Ipv4_header.proto_udp ~len:0;
                }
              in
              t.flow <- Some f;
              f
        in
        let pseudo = Inet_csum.add_u16 fl.f_base dgram_len in
        let offload =
          checksum && t.single_copy && iface.Netif.single_copy
          && not will_fragment
        in
        let hbytes = fl.f_tpl in
        Bytes.set_uint16_be hbytes 4 dgram_len;
        let record, csum_cost =
          if not checksum then begin
            Bytes.set_uint16_be hbytes Udp_header.csum_field_offset 0;
            (None, 0)
          end
          else if offload then begin
            t.s <- { t.s with csum_offloaded_tx = t.s.csum_offloaded_tx + 1 };
            Bytes.set_uint16_be hbytes Udp_header.csum_field_offset
              (Inet_csum.fold pseudo land 0xffff);
            ( Some
                (Csum_offload.make_tx
                   ~csum_offset:Udp_header.csum_field_offset ~skip_bytes:0
                   ~seed:pseudo),
              0 )
          end
          else begin
            t.s <- { t.s with csum_host_tx = t.s.csum_host_tx + 1 };
            Bytes.set_uint16_be hbytes Udp_header.csum_field_offset 0;
            let hdr_sum = Inet_csum.of_bytes hbytes in
            let body = Mbuf.checksum payload ~off:0 ~len:payload_len in
            let field =
              Inet_csum.finish
                (Inet_csum.add pseudo
                   (Inet_csum.concat ~first_len:Udp_header.size hdr_sum body))
            in
            (* RFC 768: a computed zero checksum is sent as all-ones. *)
            let field = if field = 0 then 0xffff else field in
            Bytes.set_uint16_be hbytes Udp_header.csum_field_offset field;
            ( None,
              Memcost.checksum_read t.hst.Host.profile ~locality:Memcost.Cold
                payload_len )
          end
        in
        let dgram = Mbuf.prepend payload Udp_header.size in
        Mbuf.copy_from dgram ~off:0 ~len:Udp_header.size hbytes ~src_off:0;
        (match dgram.Mbuf.pkthdr with
        | Some ph -> ph.Mbuf.tx_csum <- record
        | None -> ());
        t.s <-
          {
            t.s with
            dgrams_sent = t.s.dgrams_sent + 1;
            bytes_sent = t.s.bytes_sent + payload_len;
          };
        let cost = Memcost.per_packet t.hst.Host.profile + csum_cost in
        Host.in_proc t.hst ~proc ~site:Cpu.Header
          ~split:(Cpu.Checksum, csum_cost) cost (fun () ->
            match
              Ipv4.output t.ip ~proto:Ipv4_header.proto_udp ~src
                ~dst:dst.addr dgram
            with
            | Ok _ -> ()
            | Error _ -> ());
        Ok ()
      end
