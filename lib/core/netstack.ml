type t = {
  host : Host.t;
  ip : Ipv4.t;
  tcp : Tcp.t;
  udp : Udp.t;
  mode : Stack_mode.t;
}

let create ~sim ~profile ~name ~mode ?(tcp_config = fun c -> c) ?(shards = 1)
    () =
  let host = Host.create ~shards ~sim ~profile ~name () in
  let ip = Ipv4.create ~host in
  let single_copy = Stack_mode.is_single_copy mode in
  let cfg = { Tcp.default_config with Tcp.single_copy } in
  let tcp = Tcp.create ~ip ~config:(tcp_config cfg) in
  let udp = Udp.create ~ip ~single_copy in
  { host; ip; tcp; udp; mode }

let subnet_of addr =
  (* /24 containing the address. *)
  Int32.logand addr 0xffffff00l

(* RSS steering classifier: hash the TCP 4-tuple out of the auto-DMA'd
   frame head.  Layout is fixed by the stack's encoders: 40-byte HIPPI
   framing, then an IPv4 header with ihl = 5 — proto at byte 49, source
   address at 52, TCP ports at 60/62.  The demux key on the receive side
   is (lport = dst_port, raddr = src, rport = src_port), hashed exactly
   as [Tcp.input] will hash it, so the interrupt lands on the shard that
   owns the pcb by construction. *)
let classify_rx (ev : Cab.intr) =
  match ev with
  | Cab.Sdma_done _ -> None
  | Cab.Rx_packet info ->
      let b = info.Cab.rx_head and n = info.Cab.rx_head_len in
      if
        n >= 64
        && Bytes.length b >= 64
        && Bytes.get_uint8 b 49 = Ipv4_header.proto_tcp
        && Bytes.get_uint16_be b 46 land 0x3fff = 0 (* not a fragment *)
      then
        let raddr = Bytes.get_int32_be b 52 in
        let rport = Bytes.get_uint16_be b 60 in
        let lport = Bytes.get_uint16_be b 62 in
        Some (Flow_hash.hash ~raddr ~lport ~rport)
      else None

let attach_cab t ~cab ~addr ?mtu ?watchdog ?sdma_timeout ?rx_pipe_depth () =
  let drv =
    Cab_driver.attach ~host:t.host ~ip:t.ip ~cab ~addr ?mtu ~mode:t.mode
      ?watchdog ?sdma_timeout ?rx_pipe_depth ()
  in
  if Host.shard_count t.host > 1 then Cab_driver.set_steer drv classify_rx;
  Routing.add_route (Ipv4.routing t.ip) ~prefix:(subnet_of addr) ~len:24
    (Cab_driver.iface drv);
  drv

let attach_ether t ~dev ~addr ?mtu () =
  let drv = Ether_driver.attach ~host:t.host ~ip:t.ip ~dev ~addr ?mtu () in
  Routing.add_route (Ipv4.routing t.ip) ~prefix:(subnet_of addr) ~len:24
    (Ether_driver.iface drv);
  drv

let attach_loopback t = Loopback.attach ~host:t.host ~ip:t.ip ()

let add_route t ~prefix ~len ?gateway ifc =
  Routing.add_route (Ipv4.routing t.ip) ~prefix ~len ?gateway ifc

let set_forwarding t v = Ipv4.set_forwarding t.ip v

let make_space t ~name =
  Addr_space.create ~profile:t.host.Host.profile
    ~name:(t.host.Host.name ^ "." ^ name)
