type t = {
  host : Host.t;
  ip : Ipv4.t;
  tcp : Tcp.t;
  udp : Udp.t;
  mode : Stack_mode.t;
}

let create ~sim ~profile ~name ~mode ?(tcp_config = fun c -> c) () =
  let host = Host.create ~sim ~profile ~name in
  let ip = Ipv4.create ~host in
  let single_copy = Stack_mode.is_single_copy mode in
  let cfg = { Tcp.default_config with Tcp.single_copy } in
  let tcp = Tcp.create ~ip ~config:(tcp_config cfg) in
  let udp = Udp.create ~ip ~single_copy in
  { host; ip; tcp; udp; mode }

let subnet_of addr =
  (* /24 containing the address. *)
  Int32.logand addr 0xffffff00l

let attach_cab t ~cab ~addr ?mtu ?watchdog ?sdma_timeout ?rx_pipe_depth () =
  let drv =
    Cab_driver.attach ~host:t.host ~ip:t.ip ~cab ~addr ?mtu ~mode:t.mode
      ?watchdog ?sdma_timeout ?rx_pipe_depth ()
  in
  Routing.add_route (Ipv4.routing t.ip) ~prefix:(subnet_of addr) ~len:24
    (Cab_driver.iface drv);
  drv

let attach_ether t ~dev ~addr ?mtu () =
  let drv = Ether_driver.attach ~host:t.host ~ip:t.ip ~dev ~addr ?mtu () in
  Routing.add_route (Ipv4.routing t.ip) ~prefix:(subnet_of addr) ~len:24
    (Ether_driver.iface drv);
  drv

let attach_loopback t = Loopback.attach ~host:t.host ~ip:t.ip ()

let add_route t ~prefix ~len ?gateway ifc =
  Routing.add_route (Ipv4.routing t.ip) ~prefix ~len ?gateway ifc

let set_forwarding t v = Ipv4.set_forwarding t.ip v

let make_space t ~name =
  Addr_space.create ~profile:t.host.Host.profile
    ~name:(t.host.Host.name ^ "." ^ name)
