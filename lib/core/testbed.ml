type node = {
  stack : Netstack.t;
  cab : Cab.t;
  driver : Cab_driver.t;
}

type t = {
  sim : Sim.t;
  link : Hippi_link.t;
  a : node;
  b : node;
}

let addr_a = Inaddr.v 10 0 0 1
let addr_b = Inaddr.v 10 0 0 2

let create ?(profile = Host_profile.alpha400)
    ?(mode = Stack_mode.Single_copy) ?(mtu = 32 * 1024)
    ?(netmem_pages = 4096) ?tcp_config ?(drop_a_frames = [])
    ?(drop_b_frames = []) ?watchdog ?sdma_timeout ?(shards = 1) ?link_rate
    () =
  let sim = Sim.create () in
  (* Packet-trace timestamps come from this testbed's simulator; a new
     testbed retargets the (process-global) tracer clock. *)
  Obs_trace.set_clock (fun () -> Sim.now sim);
  let link =
    match link_rate with
    | None -> Hippi_link.create ~sim ()
    | Some rate -> Hippi_link.create ~sim ~rate ()
  in
  let a_frame_count = ref 0 in
  let b_frame_count = ref 0 in
  let mk_node ~name ~side ~hippi_addr ~addr =
    let stack =
      Netstack.create ~sim ~profile ~name ~mode ?tcp_config ~shards ()
    in
    let cab =
      Cab.create ~sim ~profile ~name:(name ^ ".cab") ~netmem_pages
        ~hippi_addr
        ~transmit:(fun frame ~dst:_ ~channel:_ ->
          let counter, drops =
            match side with
            | Hippi_link.A -> (a_frame_count, drop_a_frames)
            | Hippi_link.B -> (b_frame_count, drop_b_frames)
          in
          let i = !counter in
          incr counter;
          if not (List.mem i drops) then
            Hippi_link.send link ~from:side frame
          else
            (* The dropped frame never reaches the link: recycle its
               buffer so the shared pool's get/put balance stays exact. *)
            Bufpool.put Bufpool.shared frame)
        ()
    in
    let driver =
      Netstack.attach_cab stack ~cab ~addr ~mtu ?watchdog ?sdma_timeout ()
    in
    { stack; cab; driver }
  in
  let a = mk_node ~name:"hostA" ~side:Hippi_link.A ~hippi_addr:1 ~addr:addr_a in
  let b = mk_node ~name:"hostB" ~side:Hippi_link.B ~hippi_addr:2 ~addr:addr_b in
  Hippi_link.set_rx link Hippi_link.B (fun f -> Cab.deliver b.cab f);
  Hippi_link.set_rx link Hippi_link.A (fun f -> Cab.deliver a.cab f);
  Cab_driver.add_neighbor a.driver addr_b ~hippi_addr:2;
  Cab_driver.add_neighbor b.driver addr_a ~hippi_addr:1;
  { sim; link; a; b }

let establish_stream t ~port ?a_paths ?b_paths k =
  let a_sock = ref None and b_sock = ref None in
  let maybe_go () =
    match (!a_sock, !b_sock) with
    | Some sa, Some sb -> k sa sb
    | _ -> ()
  in
  Tcp.listen t.b.stack.Netstack.tcp ~port ~on_accept:(fun pcb ->
      let space = Netstack.make_space t.b.stack ~name:"srv" in
      b_sock :=
        Some
          (Socket.create ~host:t.b.stack.Netstack.host ~space ~proc:"ttcp"
             ?paths:b_paths pcb);
      maybe_go ());
  let pcb = ref None in
  pcb :=
    Some
      (Tcp.connect t.a.stack.Netstack.tcp ~dst:addr_b ~dst_port:port
         ~on_established:(fun () ->
           let space = Netstack.make_space t.a.stack ~name:"cli" in
           a_sock :=
             Some
               (Socket.create ~host:t.a.stack.Netstack.host ~space
                  ~proc:"ttcp" ?paths:a_paths (Option.get !pcb));
           maybe_go ())
         ())
