(** The CAB network device driver (§3-§5).

    This is where every data-touching operation of the single-copy path
    lands: the driver translates descriptor chains into SDMA programs,
    carries the checksum-offload record into the hardware, converts send
    data to M_WCAB once it is outboard, reconstructs receive chains (host
    header prefix + M_WCAB tail), and provides the [copy_out] routine the
    socket layer uses to move outboard receive data.

    In [Unmodified] mode the same driver serves the baseline stack: it
    accepts only regular chains (descriptors are converted at entry by the
    §5 shim), programs no checksum hardware, and copies whole received
    packets into kernel mbufs before handing them up.

    Transmit packet geometry: [HIPPI (40) | IP (20) | transport | data],
    so the engine's receive-side fixed start (word 20 = byte 80) and the
    transmit skip/seed records line up as described in §4.3. *)

type t

type driver_stats = {
  tx_packets : int;
  tx_uio_segments : int;  (** payload SDMAs straight from user memory *)
  tx_kernel_segments : int;
  tx_rewrites : int;  (** retransmits satisfied by header rewrite *)
  tx_adaptor_copies : int;
      (** netmem-to-netmem payload copies (partial retransmit of outboard
          data) *)
  tx_conversions : int;  (** UIO chains copied at entry (unmodified mode) *)
  tx_drops : int;  (** network-memory exhaustion or missing neighbor *)
  rx_packets : int;
  rx_wcab_delivered : int;  (** packets handed up with an outboard tail *)
  rx_copied_kernel : int;  (** packets fully copied to kernel (unmodified) *)
  copyouts : int;
  unaligned_staged : int;  (** copy-outs staged through kernel memory *)
  tx_gather_fallbacks : int;
      (** unaligned-scatter packets flattened into one kernel blob *)
  tx_gather_bytes : int;  (** payload bytes those flattens copied *)
  tx_staged_segments : int;
      (** scatter pieces bounced through a kernel staging buffer *)
  tx_staged_bytes : int;
  sdma_timeouts : int;
      (** watchdog timeouts that reclaimed a stuck post and reposted it *)
  adaptor_resets : int;
      (** last-resort adaptor resets after [max_sdma_retries] reposts *)
  watchdog_polls : int;  (** lost-interrupt poll-timer firings *)
  tx_exhausted : int;  (** transmit drops because netmem allocation failed *)
}

val attach :
  host:Host.t ->
  ip:Ipv4.t ->
  cab:Cab.t ->
  addr:Inaddr.t ->
  ?mtu:int ->
  mode:Stack_mode.t ->
  ?watchdog:Simtime.t ->
  ?sdma_timeout:Simtime.t ->
  ?max_sdma_retries:int ->
  ?rx_pipe_depth:int ->
  unit ->
  t
(** Creates the interface (MTU defaults to 32 KByte as in §7.1), hooks the
    adaptor's interrupt handler, and registers the interface + an on-link
    host route with IP.

    [watchdog] (default off) arms the recovery plane: a lost-interrupt
    poll timer at the given interval, plus per-post completion timeouts.
    A watched SDMA post that has not completed after [sdma_timeout]
    (default 1 ms, doubled per retry) and shows up in the adaptor's stall
    status register is reclaimed and reposted; after [max_sdma_retries]
    (default 3) the driver resets the adaptor and requeues every
    in-flight watched post.  With [watchdog] unset none of this machinery
    runs and the datapath is unchanged.

    [rx_pipe_depth] configures the adaptor's copy-out engine bound (see
    {!Cab.set_rx_pipe_depth}); unset leaves the adaptor default. *)

val iface : t -> Netif.t
val cab : t -> Cab.t
val stats : t -> driver_stats
val pp_stats : Format.formatter -> driver_stats -> unit

val add_neighbor : t -> Inaddr.t -> hippi_addr:int -> unit
(** Static address resolution: IP next hop to HIPPI switch address. *)

val set_steer : t -> (Cab.intr -> int option) -> unit
(** Install the RSS steering classifier: given an adaptor event, return
    the flow hash of the frame it carries ([None] when unclassifiable —
    non-TCP, fragment, short head, SDMA completion).  On a multi-shard
    host, {!attach}'s batch-interrupt handler splits each burst by
    [hash mod shards] and raises one interrupt per owning shard; without
    a classifier (or on a 1-shard host) everything lands on shard 0. *)
