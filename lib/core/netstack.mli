(** Assembly of one host's protocol stack.

    One [Netstack.t] is the paper's "single stack" (§4.1): a single IP
    instance with one routing table serving every interface — single-copy
    CABs, legacy Ethernets, loopback — with TCP and UDP on top.  The
    [mode] selects the unmodified baseline or the single-copy stack for
    the whole host. *)

type t = {
  host : Host.t;
  ip : Ipv4.t;
  tcp : Tcp.t;
  udp : Udp.t;
  mode : Stack_mode.t;
}

val create :
  sim:Sim.t ->
  profile:Host_profile.t ->
  name:string ->
  mode:Stack_mode.t ->
  ?tcp_config:(Tcp.config -> Tcp.config) ->
  ?shards:int ->
  unit ->
  t
(** [tcp_config] tweaks the mode-derived default TCP configuration.
    [shards] (default 1) splits the host into that many RSS shards; see
    {!Host.create} and {!Shard}. *)

val attach_cab :
  t ->
  cab:Cab.t ->
  addr:Inaddr.t ->
  ?mtu:int ->
  ?watchdog:Simtime.t ->
  ?sdma_timeout:Simtime.t ->
  ?rx_pipe_depth:int ->
  unit ->
  Cab_driver.t
(** Attaches the CAB and routes [addr]/24 over it.  [watchdog] /
    [sdma_timeout] arm the driver's recovery plane (see
    {!Cab_driver.attach}). *)

val attach_ether :
  t -> dev:Etherdev.t -> addr:Inaddr.t -> ?mtu:int -> unit -> Ether_driver.t
(** Attaches a legacy Ethernet and routes [addr]/24 over it. *)

val attach_loopback : t -> Loopback.t

val add_route :
  t -> prefix:Inaddr.t -> len:int -> ?gateway:Inaddr.t -> Netif.t -> unit

val set_forwarding : t -> bool -> unit

val make_space : t -> name:string -> Addr_space.t
(** A fresh application address space on this host. *)
