(** The paper's two-host testbed: two workstations with CAB adaptors on a
    point-to-point HIPPI link (§7.1), ready for experiments, tests and
    examples.

    Addresses: host A is 10.0.0.1, host B is 10.0.0.2, on HIPPI switch
    addresses 1 and 2. *)

type node = {
  stack : Netstack.t;
  cab : Cab.t;
  driver : Cab_driver.t;
}

type t = {
  sim : Sim.t;
  link : Hippi_link.t;
  a : node;
  b : node;
}

val addr_a : Inaddr.t
val addr_b : Inaddr.t

val create :
  ?profile:Host_profile.t ->
  ?mode:Stack_mode.t ->
  ?mtu:int ->
  ?netmem_pages:int ->
  ?tcp_config:(Tcp.config -> Tcp.config) ->
  ?drop_a_frames:int list ->
  ?drop_b_frames:int list ->
  ?watchdog:Simtime.t ->
  ?sdma_timeout:Simtime.t ->
  ?shards:int ->
  ?link_rate:float ->
  unit ->
  t
(** Defaults: alpha400 profile, single-copy mode, 32 KByte MTU, 4096
    network-memory pages per CAB (16 MByte).  [drop_a_frames] /
    [drop_b_frames] inject loss: the i-th frames sent by that host
    (0-based) are silently discarded — the fault-injection hooks for
    retransmission experiments.  [watchdog] / [sdma_timeout] arm both
    drivers' recovery plane (see {!Cab_driver.attach}); off by default.
    [shards] (default 1) splits both hosts into RSS shards (see
    {!Host.create}); [link_rate] overrides the HIPPI line rate in
    bytes/s for scaling experiments where 100 MByte/s would cap the
    aggregate. *)

val establish_stream :
  t ->
  port:int ->
  ?a_paths:Socket.path_config ->
  ?b_paths:Socket.path_config ->
  (Socket.t -> Socket.t -> unit) ->
  unit
(** Listens on B, connects from A, and calls the continuation with the
    two connected sockets (A-side first) once the handshake completes.
    Run the simulation to make progress. *)
