type driver_stats = {
  tx_packets : int;
  tx_uio_segments : int;
  tx_kernel_segments : int;
  tx_rewrites : int;
  tx_adaptor_copies : int;
  tx_conversions : int;
  tx_drops : int;
  rx_packets : int;
  rx_wcab_delivered : int;
  rx_copied_kernel : int;
  copyouts : int;
  unaligned_staged : int;
  tx_gather_fallbacks : int;  (* unaligned-scatter packets flattened *)
  tx_gather_bytes : int;
  tx_staged_segments : int;   (* unaligned pieces bounced via kernel *)
  tx_staged_bytes : int;
  sdma_timeouts : int;        (* stuck posts reclaimed and reposted *)
  adaptor_resets : int;       (* last-resort resets after max retries *)
  watchdog_polls : int;       (* lost-interrupt poll-timer firings *)
  tx_exhausted : int;         (* drops because netmem alloc failed *)
}

type t = {
  host : Host.t;
  cab : Cab.t;
  mode : Stack_mode.t;
  mutable ifc : Netif.t option;
  (* WCAB id -> live netmem packet, for retransmit rewrite and copy-out. *)
  live_outboard : (int, Netmem.packet) Hashtbl.t;
  (* Recovery plane (all inert when [watchdog = None]). *)
  watchdog : Simtime.t option;  (* lost-interrupt poll interval *)
  sdma_timeout : Simtime.t;  (* base completion timeout, doubled per retry *)
  max_sdma_retries : int;
  mutable inflight : int;  (* watched posts not yet completed *)
  poll_timer : Sim.handle;  (* reusable lost-interrupt poll timer *)
  mutable watch_key : int;
  (* watch key -> reset-recovery thunk for every in-flight watched post *)
  tx_watch : (int, unit -> unit) Hashtbl.t;
  (* RSS steering classifier: maps an adaptor event to the flow hash of
     the frame it carries (the stack installs one; see Netstack).  Only
     consulted on multi-shard hosts. *)
  mutable steer : (Cab.intr -> int option) option;
  mutable s : driver_stats;
}

let zero_stats =
  {
    tx_packets = 0;
    tx_uio_segments = 0;
    tx_kernel_segments = 0;
    tx_rewrites = 0;
    tx_adaptor_copies = 0;
    tx_conversions = 0;
    tx_drops = 0;
    rx_packets = 0;
    rx_wcab_delivered = 0;
    rx_copied_kernel = 0;
    copyouts = 0;
    unaligned_staged = 0;
    tx_gather_fallbacks = 0;
    tx_gather_bytes = 0;
    tx_staged_segments = 0;
    tx_staged_bytes = 0;
    sdma_timeouts = 0;
    adaptor_resets = 0;
    watchdog_polls = 0;
    tx_exhausted = 0;
  }

let iface t = Option.get t.ifc
let cab t = t.cab
let stats t = t.s

(* ---------- SDMA completion watchdog / recovery plane ----------

   Entirely opt-in: with [watchdog = None] (the default) none of this
   machinery runs and the clean path is byte-for-byte the old driver.

   Each "watched" SDMA program (the tx descriptor chain, copy-outs) gets
   a completion timer.  On expiry the driver reads the adaptor's stall
   status register ({!Cab.stalled_posts}): a stuck post is reclaimed
   ({!Cab.clear_stall}) and reposted with exponential backoff; a post
   that is merely slow (bus queueing) keeps waiting with no backoff
   growth.  After [max_sdma_retries] reposts the driver resets the
   adaptor, which re-runs every outstanding watched post from scratch.

   A separate periodic poll timer covers lost completion interrupts: it
   calls {!Cab.poll}, which schedules a delivery burst for any stranded
   notifications, and stays armed while watched posts are in flight or
   events are pending. *)

let backoff t attempt =
  Simtime.us
    (Simtime.to_us t.sdma_timeout *. float_of_int (1 lsl min attempt 6))

let driver_reset t =
  t.s <- { t.s with adaptor_resets = t.s.adaptor_resets + 1 };
  (* A reset is a transmit-side fault the policy layer should see: while
     the adaptor is being bounced the outboard path is the wrong bet. *)
  (match t.ifc with
  | Some ifc -> ifc.Netif.tx_faults <- ifc.Netif.tx_faults + 1
  | None -> ());
  (* Snapshot first: recovery thunks repost, which mutates [tx_watch]. *)
  let thunks = Hashtbl.fold (fun _ f acc -> f :: acc) t.tx_watch [] in
  List.iter (fun f -> f ()) thunks

let arm_poll t interval =
  if not (Sim.armed t.poll_timer) then
    Sim.rearm (Cab.sim t.cab) t.poll_timer interval

(* Installed once on [poll_timer] at attach; re-arms in place (no
   allocation) while watched posts or stranded events remain. *)
let poll_fire t =
  t.s <- { t.s with watchdog_polls = t.s.watchdog_polls + 1 };
  ignore (Cab.poll t.cab);
  match t.watchdog with
  | Some interval when t.inflight > 0 || Cab.pending_events t.cab > 0 ->
      arm_poll t interval
  | _ -> ()

let kick_watchdog t =
  match t.watchdog with None -> () | Some interval -> arm_poll t interval

(* Run [post] (which must accept a completion callback and be safe to
   re-run after a [clear_stall]) under the watchdog.  [on_done] fires
   exactly once, on the first completion. *)
let watched_post t netpkt ~post ~on_done =
  match t.watchdog with
  | None -> post ~on_complete:on_done
  | Some _ ->
      let key = t.watch_key in
      t.watch_key <- key + 1;
      t.inflight <- t.inflight + 1;
      let completed = ref false in
      (* Generation stamp: reposting invalidates any timer armed for an
         earlier attempt, so at most one recovery path is live. *)
      let gen = ref 0 in
      (* The live watch timer, cancelled the moment the post completes —
         an O(1) wheel unlink instead of a tombstone that would sit in
         the scheduler until its (seconds-scale backoff) deadline. *)
      let watch : Sim.handle option ref = ref None in
      let finish () =
        if not !completed then begin
          completed := true;
          t.inflight <- t.inflight - 1;
          Hashtbl.remove t.tx_watch key;
          (match !watch with
          | Some h ->
              Sim.cancel (Cab.sim t.cab) h;
              watch := None
          | None -> ());
          on_done ()
        end
      in
      let rec post_attempt attempt =
        incr gen;
        post ~on_complete:finish;
        arm_watch !gen attempt
      and arm_watch g attempt =
        watch :=
          Some
            (Sim.after (Cab.sim t.cab) (backoff t attempt) (fun () ->
               if (not !completed) && !gen = g then
                 if Cab.stalled_posts t.cab netpkt > 0 then
                   if attempt >= t.max_sdma_retries then driver_reset t
                   else begin
                     t.s <- { t.s with sdma_timeouts = t.s.sdma_timeouts + 1 };
                     Cab.clear_stall t.cab netpkt;
                     post_attempt (attempt + 1)
                   end
                 else
                   (* Not stuck, just slow (bus queueing): keep waiting
                      at the same timeout — no backoff growth. *)
                   arm_watch g attempt))
      in
      Hashtbl.replace t.tx_watch key (fun () ->
          if (not !completed) && Cab.stalled_posts t.cab netpkt > 0 then begin
            t.s <- { t.s with sdma_timeouts = t.s.sdma_timeouts + 1 };
            Cab.clear_stall t.cab netpkt;
            post_attempt 0
          end);
      post_attempt 0;
      kick_watchdog t

let hippi_hdr = Hippi_framing.size (* 40 *)
let net_hdrs = Hippi_framing.size + Ipv4_header.size (* 60 *)

let channel_for dst = dst land 0x7

let word_pad n = (n + 3) land lnot 3

(* Translate the transport-relative offload record to packet offsets: the
   transport header starts after the HIPPI and IP headers. *)
let translate_csum (rec_ : Csum_offload.tx) =
  Csum_offload.make_tx
    ~csum_offset:(net_hdrs + rec_.Csum_offload.csum_offset)
    ~skip_bytes:(net_hdrs + rec_.Csum_offload.skip_bytes)
    ~seed:rec_.Csum_offload.seed

(* ---------- transmit ---------- *)

(* Host-readable prefix: the leading internal/cluster mbufs (headers and
   any inline data). *)
let split_prefix chain =
  let rec go (m : Mbuf.t option) acc =
    match m with
    | None -> (acc, [])
    | Some mb -> (
        match Mbuf.kind mb with
        | Mbuf.K_internal | Mbuf.K_cluster -> go mb.Mbuf.next (acc + mb.Mbuf.len)
        | Mbuf.K_uio | Mbuf.K_wcab ->
            let rec rest (m : Mbuf.t option) acc2 =
              match m with
              | None -> List.rev acc2
              | Some mb -> rest mb.Mbuf.next (mb :: acc2)
            in
            (acc, rest (Some mb) []))
  in
  go (Some chain) 0

(* Retransmission fast path: the payload is exactly the outboard image of
   a packet we still hold (§4.3). *)
let rewrite_candidate t ~prefix_len pieces =
  match pieces with
  | [ (mb : Mbuf.t) ] when Mbuf.kind mb = Mbuf.K_wcab -> (
      match mb.Mbuf.storage with
      | Mbuf.Ext_wcab desc -> (
          match Hashtbl.find_opt t.live_outboard desc.Mbuf.wcab_id with
          | Some pkt
            when pkt.Netmem.state = Netmem.Held
                 && mb.Mbuf.off = 0
                 && desc.Mbuf.wcab_base = pkt.Netmem.hdr_len
                 && hippi_hdr + prefix_len = pkt.Netmem.hdr_len
                 && mb.Mbuf.len = pkt.Netmem.len - pkt.Netmem.hdr_len ->
              Some pkt
          | Some _ | None -> None)
      | _ -> None)
  | _ -> None

(* Ledger attribution for the prefix gather in [build_header]: leading
   internal mbufs are protocol headers (prepended by the transports),
   cluster mbufs are staged payload (the unmodified stack's kernel
   copies), so the copy splits into header vs payload host touches. *)
let charge_prefix chain ~prefix_len =
  let rec go (m : Mbuf.t option) remaining =
    if remaining > 0 then
      match m with
      | None -> ()
      | Some mb ->
          let n = min remaining mb.Mbuf.len in
          (match Mbuf.kind mb with
          | Mbuf.K_internal ->
              Obs_ledger.touch Obs_ledger.Drv_tx_header Obs_ledger.Copy n
          | _ -> Obs_ledger.touch Obs_ledger.Drv_tx_gather Obs_ledger.Copy n);
          go mb.Mbuf.next (remaining - n)
  in
  go (Some chain) prefix_len

let build_header t ~dst ~payload_total chain ~prefix_len =
  let hdr_len = word_pad (hippi_hdr + prefix_len) in
  (* Zero-filled: the word-alignment pad bytes ride through the transmit
     checksum engine but are never transmitted, so they must be zero (a
     ones-complement sum is unchanged by zeros). *)
  let hdr = Bytes.make hdr_len '\000' in
  Hippi_framing.encode
    (Hippi_framing.make
       ~src:(Cab.hippi_addr t.cab)
       ~dst ~channel:(channel_for dst) ~payload_len:payload_total)
    hdr ~off:0;
  charge_prefix chain ~prefix_len;
  Mbuf.copy_into chain ~off:0 ~len:prefix_len hdr ~dst_off:hippi_hdr;
  hdr

let output t ifc pkt ~next_hop =
  match Netif.link_addr ifc next_hop with
  | None ->
      t.s <- { t.s with tx_drops = t.s.tx_drops + 1 };
      Mbuf.free pkt
  | Some dst -> (
      let total = Mbuf.pkt_len pkt in
      let prefix_len, pieces = split_prefix pkt in
      let tx_csum =
        match pkt.Mbuf.pkthdr with
        | Some ph -> Option.map translate_csum ph.Mbuf.tx_csum
        | None -> None
      in
      let on_outboard =
        match pkt.Mbuf.pkthdr with
        | Some ph -> ph.Mbuf.on_outboard
        | None -> None
      in
      let post_cost = Memcost.dma_post t.host.Host.profile in
      match rewrite_candidate t ~prefix_len pieces with
      | Some netpkt ->
          (* Header rewrite: new header + saved body checksum; the data is
             not touched (§4.3). *)
          let hdr = build_header t ~dst ~payload_total:total pkt ~prefix_len in
          t.s <-
            {
              t.s with
              tx_packets = t.s.tx_packets + 1;
              tx_rewrites = t.s.tx_rewrites + 1;
            };
          Host.in_intr t.host post_cost (fun () ->
              Cab.tx_rewrite_header t.cab netpkt ~header:hdr ~csum:tx_csum ();
              Cab.mdma_send t.cab netpkt ~dst ~channel:(channel_for dst)
                ~keep:true;
              Mbuf.free pkt)
      | None -> (
          let pkt_len = hippi_hdr + total in
          match Cab.tx_alloc t.cab ~len:(word_pad pkt_len) with
          | None ->
              (* Network memory exhausted: drop; TCP retransmission
                 recovers.  Count it on the interface too so the socket
                 layer's policy can penalize the outboard path while the
                 adaptor is starved. *)
              t.s <-
                {
                  t.s with
                  tx_drops = t.s.tx_drops + 1;
                  tx_exhausted = t.s.tx_exhausted + 1;
                };
              ifc.Netif.tx_faults <- ifc.Netif.tx_faults + 1;
              Mbuf.free pkt
          | Some netpkt ->
              netpkt.Netmem.len <- pkt_len;
              let hdr =
                build_header t ~dst ~payload_total:total pkt ~prefix_len
              in
              let payload_base = hippi_hdr + prefix_len in
              let nonempty =
                List.filter (fun (mb : Mbuf.t) -> mb.Mbuf.len > 0) pieces
              in
              (* §4.5 guard, generalized to the whole scatter list: every
                 piece must land word aligned.  An unaligned base (inline
                 data ahead of descriptors) or an odd-length piece mid-list
                 (coalesced sub-word writes) sends the packet down the
                 gather path. *)
              let scatter_unaligned =
                nonempty <> []
                &&
                let off = ref payload_base and bad = ref false in
                List.iter
                  (fun (mb : Mbuf.t) ->
                    if !off land 3 <> 0 then bad := true;
                    off := !off + mb.Mbuf.len)
                  nonempty;
                !bad
              in
              if scatter_unaligned then begin
                (* Unaligned scatter (a packet mixing inline and descriptor
                   data, or descriptor pieces at sub-word offsets): gather
                   the whole packet into one kernel blob and DMA it as a
                   unit.  The checksum engine still covers [skip, end)
                   during the single SDMA. *)
                let blob = Bytes.make (word_pad pkt_len) '\000' in
                let gathered = total - prefix_len in
                Obs_ledger.touch Obs_ledger.Drv_tx_header Obs_ledger.Copy
                  (hippi_hdr + prefix_len);
                Obs_ledger.touch Obs_ledger.Drv_tx_gather Obs_ledger.Copy
                  gathered;
                Bytes.blit hdr 0 blob 0 (hippi_hdr + prefix_len);
                Mbuf.copy_into_raw pkt ~off:prefix_len
                  ~len:gathered blob
                  ~dst_off:(hippi_hdr + prefix_len);
                t.s <-
                  {
                    t.s with
                    tx_packets = t.s.tx_packets + 1;
                    tx_gather_fallbacks = t.s.tx_gather_fallbacks + 1;
                    tx_gather_bytes = t.s.tx_gather_bytes + gathered;
                  };
                (* Credit any UIO counters: the gather is the copy. *)
                Mbuf.iter
                  (fun (mb : Mbuf.t) ->
                    match (Mbuf.kind mb, mb.Mbuf.uwhdr) with
                    | Mbuf.K_uio, Some { Mbuf.notify = Some n; _ } ->
                        Mbuf.notify_complete_n n mb.Mbuf.len
                    | _ -> ())
                  pkt;
                Mbuf.free pkt;
                Host.in_intr t.host post_cost (fun () ->
                    Cab.sdma_header t.cab netpkt ~header:blob ~csum:tx_csum ();
                    Cab.mdma_send t.cab netpkt ~dst
                      ~channel:(channel_for dst) ~keep:false)
              end
              else begin
                t.s <- { t.s with tx_packets = t.s.tx_packets + 1 };
                (* Count payload SDMAs so the on_outboard hook fires when
                   the packet is fully outboard. *)
                let payload_len = total - prefix_len in
                let remaining = ref (List.length nonempty) in
                let keep = on_outboard <> None && payload_len > 0 in
                let maybe_convert () =
                  match on_outboard with
                  | Some hook when payload_len > 0 ->
                      let desc =
                        {
                          Mbuf.wcab_id = netpkt.Netmem.id;
                          wcab_bytes = netpkt.Netmem.buf;
                          wcab_base = hippi_hdr + prefix_len;
                          wcab_valid = payload_len;
                          wcab_body_sum = netpkt.Netmem.body_sum;
                          wcab_free =
                            (fun () ->
                              Hashtbl.remove t.live_outboard netpkt.Netmem.id;
                              Cab.tx_free t.cab netpkt);
                          wcab_refs = ref 1;
                        }
                      in
                      Hashtbl.replace t.live_outboard netpkt.Netmem.id netpkt;
                      hook desc
                  | Some _ | None -> ()
                in
                (* Describe the payload SDMAs (scatter/gather over the
                   pieces); the sources are captured eagerly so freeing the
                   chain below is safe. *)
                let pkt_off = ref payload_base in
                let payload_reqs =
                  List.map
                    (fun (mb : Mbuf.t) ->
                      let seg = mb.Mbuf.len in
                      let this_off = !pkt_off in
                      pkt_off := !pkt_off + seg;
                      let notify =
                        match mb.Mbuf.uwhdr with
                        | Some { Mbuf.notify = Some n; _ } -> Some n
                        | Some { Mbuf.notify = None; _ } | None -> None
                      in
                      let interrupt =
                        match notify with
                        | Some n -> n.Mbuf.dma_pending <= seg
                        | None -> false
                      in
                      (* Set for zero-copy captures: releases the pin on
                         the mbuf storage once the SDMA has committed. *)
                      let release = ref (fun () -> ()) in
                      let on_complete () =
                        (match notify with
                        | Some n -> Mbuf.notify_complete_n n seg
                        | None -> ());
                        !release ();
                        decr remaining;
                        if !remaining = 0 then maybe_convert ()
                      in
                      let src =
                        match mb.Mbuf.storage with
                        | Mbuf.Ext_uio d ->
                            t.s <-
                              {
                                t.s with
                                tx_uio_segments = t.s.tx_uio_segments + 1;
                              };
                            let sub =
                              Region.sub d.Mbuf.uio_region ~off:mb.Mbuf.off
                                ~len:seg
                            in
                            if Region.is_word_aligned sub then
                              Cab.From_user sub
                            else begin
                              (* §4.5 guard: the socket layer should have
                                 refused this; stage via kernel. *)
                              let b = Bytes.create seg in
                              Region.blit_to_bytes sub ~src_off:0 b
                                ~dst_off:0 ~len:seg;
                              Cab.From_kernel b
                            end
                        | Mbuf.Ext_wcab d ->
                            (* Adaptor-local copy of data already in
                               network memory (rare partial retransmit). *)
                            t.s <-
                              {
                                t.s with
                                tx_adaptor_copies = t.s.tx_adaptor_copies + 1;
                              };
                            Obs_ledger.touch Obs_ledger.Drv_tx_stage
                              Obs_ledger.Copy seg;
                            let b = Bytes.create seg in
                            Bytes.blit d.Mbuf.wcab_bytes
                              (d.Mbuf.wcab_base + mb.Mbuf.off)
                              b 0 seg;
                            Cab.From_kernel b
                        | Mbuf.Internal c | Mbuf.Cluster c ->
                            t.s <-
                              {
                                t.s with
                                tx_kernel_segments = t.s.tx_kernel_segments + 1;
                              };
                            (* Zero-copy capture: hand the adaptor a window
                               on the mbuf storage itself.  The storage is
                               pinned ([retain_storage]) so the pool cannot
                               recycle it between the [Mbuf.free] below and
                               the SDMA commit; [on_complete] drops the
                               pin. *)
                            release := Mbuf.retain_storage mb;
                            Cab.From_mbuf
                              { buf = c.Mbuf.cbuf; off = mb.Mbuf.off; len = seg }
                      in
                      (src, this_off, interrupt, on_complete))
                    nonempty
                in
                Mbuf.free pkt;
                (* Chained post: header + payload segments ride one
                   descriptor chain behind one doorbell.  Charged as one
                   doorbell ring plus a quarter-cost descriptor write per
                   chained segment — the batching saving the chain buys
                   over the old one-post-per-segment scheme.  One coalesced
                   completion interrupt stands in for the per-piece ones
                   when any piece asked for one. *)
                let segs =
                  Cab.Seg_header { header = hdr; csum = tx_csum }
                  :: List.map
                       (fun (src, this_off, _interrupt, on_complete) ->
                         Cab.Seg_payload
                           {
                             src;
                             pkt_off = this_off;
                             on_seg_complete = Some on_complete;
                           })
                       payload_reqs
                in
                let want_intr =
                  List.exists (fun (_, _, i, _) -> i) payload_reqs
                in
                let doorbell =
                  post_cost + (List.length segs * post_cost / 4)
                in
                Host.in_intr t.host doorbell (fun () ->
                    (* The chain is the watched unit: a stalled chain is
                       reclaimed and reposted whole.  [mdma_send] is
                       queued once, here — it waits on [sdma_pending]
                       and fires when the (re)posted chain commits. *)
                    watched_post t netpkt
                      ~post:(fun ~on_complete ->
                        Cab.sdma_chain t.cab netpkt ~segs
                          ~interrupt:want_intr ~on_complete ())
                      ~on_done:(fun () -> ());
                    if payload_reqs = [] then maybe_convert ();
                    Cab.mdma_send t.cab netpkt ~dst
                      ~channel:(channel_for dst) ~keep)
              end))

(* ---------- copy out (receive data to host) ---------- *)

let find_packet t (mb : Mbuf.t) =
  match mb.Mbuf.storage with
  | Mbuf.Ext_wcab desc -> (
      match Hashtbl.find_opt t.live_outboard desc.Mbuf.wcab_id with
      | Some pkt -> Some (desc, pkt)
      | None -> None)
  | Mbuf.Internal _ | Mbuf.Cluster _ | Mbuf.Ext_uio _ -> None

let copy_out t (mb : Mbuf.t) ~off ~len ~dst ~on_done =
  match find_packet t mb with
  | None ->
      invalid_arg "Cab_driver.copy_out: not an outboard mbuf of this device"
  | Some (desc, pkt) ->
      t.s <- { t.s with copyouts = t.s.copyouts + 1 };
      let abs_off = desc.Mbuf.wcab_base + mb.Mbuf.off + off in
      let post = Memcost.dma_post t.host.Host.profile in
      let direct_ok =
        abs_off land 3 = 0
        &&
        match dst with
        | Netif.To_user (_, region) -> Region.is_word_aligned region
        | Netif.To_kernel _ -> true
      in
      if direct_ok then
        Host.in_intr t.host post (fun () ->
            watched_post t pkt
              ~post:(fun ~on_complete ->
                Cab.sdma_copy_out t.cab pkt ~off:abs_off ~len ~dst
                  ~interrupt:true ~on_complete ())
              ~on_done)
      else begin
        (* §4.5: unaligned destinations go the slow way — DMA an aligned
           superset into kernel staging, then memory-copy. *)
        t.s <- { t.s with unaligned_staged = t.s.unaligned_staged + 1 };
        let lead = abs_off land 3 in
        let stage_len = word_pad (len + lead) in
        let stage_len = min stage_len (pkt.Netmem.len - (abs_off - lead)) in
        let stage = Bytes.create stage_len in
        Host.in_intr t.host post (fun () ->
            watched_post t pkt
              ~post:(fun ~on_complete ->
                Cab.sdma_copy_out t.cab pkt ~off:(abs_off - lead)
                  ~len:stage_len
                  ~dst:(Netif.To_kernel (stage, 0))
                  ~interrupt:true ~on_complete ())
              ~on_done:(fun () ->
                let copy_cost =
                  Memcost.copy t.host.Host.profile ~locality:Memcost.Cold len
                in
                Host.in_intr t.host ~site:Cpu.Copy copy_cost (fun () ->
                    Obs_ledger.touch Obs_ledger.Drv_rx_stage Obs_ledger.Copy
                      len;
                    (match dst with
                    | Netif.To_user (_, region) ->
                        Region.blit_from_bytes stage ~src_off:lead region
                          ~dst_off:0 ~len
                    | Netif.To_kernel (b, k_off) ->
                        Bytes.blit stage lead b k_off len);
                    on_done ())))
      end

(* ---------- receive ---------- *)

let deliver_chain t chain =
  match t.ifc with
  | Some ifc -> Netif.deliver ifc chain
  | None -> Mbuf.free chain

let rx_csum_rel = (4 * Hippi_framing.rx_csum_start_words) - Hippi_framing.size

let handle_rx t (info : Cab.rx_info) =
  t.s <- { t.s with rx_packets = t.s.rx_packets + 1 };
  let total = info.Cab.rx_total_len in
  let head_len = info.Cab.rx_head_len in
  let host_bytes = head_len - hippi_hdr in
  if host_bytes <= 0 then Cab.rx_free t.cab info.Cab.rx_pkt
  else begin
    (* Copy the auto-DMA'd prefix (minus link framing) straight into
       pooled mbuf storage — no intermediate staging buffer. *)
    Obs_ledger.touch Obs_ledger.Drv_rx_head Obs_ledger.Copy host_bytes;
    let head =
      Mbuf.of_bytes ~pkthdr:true ~off:hippi_hdr ~len:host_bytes
        info.Cab.rx_head
    in
    if info.Cab.rx_complete then begin
      Cab.rx_free t.cab info.Cab.rx_pkt;
      (match (t.mode, head.Mbuf.pkthdr) with
      | Stack_mode.Single_copy, Some ph ->
          ph.Mbuf.rx_csum <-
            Some
              (Csum_offload.make_rx ~engine_sum:info.Cab.rx_engine_sum
                 ~rx_start:rx_csum_rel)
      | _ -> ());
      deliver_chain t head
    end
    else begin
      let tail_len = total - head_len in
      match t.mode with
      | Stack_mode.Single_copy ->
          let pkt = info.Cab.rx_pkt in
          let desc =
            {
              Mbuf.wcab_id = pkt.Netmem.id;
              wcab_bytes = pkt.Netmem.buf;
              wcab_base = head_len;
              wcab_valid = tail_len;
              wcab_body_sum = info.Cab.rx_engine_sum;
              wcab_free =
                (fun () ->
                  Hashtbl.remove t.live_outboard pkt.Netmem.id;
                  Cab.rx_free t.cab pkt);
              wcab_refs = ref 1;
            }
          in
          Hashtbl.replace t.live_outboard pkt.Netmem.id pkt;
          let tail = Mbuf.make_wcab ~desc ~len:tail_len ~hdr:None in
          Mbuf.append head tail;
          (match head.Mbuf.pkthdr with
          | Some ph ->
              ph.Mbuf.rx_csum <-
                Some
                  (Csum_offload.make_rx ~engine_sum:info.Cab.rx_engine_sum
                     ~rx_start:rx_csum_rel)
          | None -> ());
          t.s <- { t.s with rx_wcab_delivered = t.s.rx_wcab_delivered + 1 };
          deliver_chain t head
      | Stack_mode.Unmodified ->
          (* Baseline stack: the whole packet must land in kernel buffers
             before protocol processing; no hardware checksum is used. *)
          let tail = Bytes.create tail_len in
          let pkt = info.Cab.rx_pkt in
          let post = Memcost.dma_post t.host.Host.profile in
          Host.in_intr t.host post (fun () ->
              watched_post t pkt
                ~post:(fun ~on_complete ->
                  Cab.sdma_copy_out t.cab pkt ~off:head_len ~len:tail_len
                    ~dst:(Netif.To_kernel (tail, 0))
                    ~interrupt:true ~on_complete ())
                ~on_done:(fun () ->
                  Cab.rx_free t.cab pkt;
                  (* The copy-out DMA already landed the tail in [tail];
                     wrap it zero-copy instead of re-copying into pooled
                     cells, matching the paper's 2-copy baseline profile. *)
                  Mbuf.append head (Mbuf.wrap_bytes tail);
                  t.s <-
                    { t.s with rx_copied_kernel = t.s.rx_copied_kernel + 1 };
                  deliver_chain t head))
    end
  end

let handle_ev t = function
  | Cab.Sdma_done _ -> ()
  | Cab.Rx_packet info -> handle_rx t info

let interrupt_batch t evs =
  (* NAPI-style burst: one interrupt entry/exit for the whole batch, a
     quarter-cost charge for each coalesced follower (its handler work
     runs inside the already-open interrupt), all in one charged step.
     Sdma_done bookkeeping already ran in the on_complete hooks. *)
  let intr = Memcost.interrupt t.host.Host.profile in
  let nshards = Host.shard_count t.host in
  if nshards = 1 then begin
    let n = List.length evs in
    let cost = intr + ((n - 1) * intr / 4) in
    Host.in_intr t.host cost (fun () -> List.iter (handle_ev t) evs)
  end
  else begin
    (* RSS: split the batch by owning shard (classifier hash mod shard
       count; unclassifiable events go to shard 0) and raise one
       NAPI-style interrupt per shard, each on that shard's CPU, in
       shard order with per-group event order preserved. *)
    let groups = Array.make nshards [] in
    List.iter
      (fun ev ->
        let s =
          match t.steer with
          | None -> 0
          | Some classify -> (
              match classify ev with
              | Some h -> h mod nshards
              | None ->
                  Shard.note_default (Host.shard t.host 0);
                  0)
        in
        groups.(s) <- ev :: groups.(s))
      evs;
    Array.iteri
      (fun s g ->
        match List.rev g with
        | [] -> ()
        | g ->
            let n = List.length g in
            Shard.note_batch (Host.shard t.host s) n;
            let cost = intr + ((n - 1) * intr / 4) in
            (* Steered per-shard dispatch: this charge is the RSS demux
               path (classify + per-shard raise), distinct from the
               plain single-CPU interrupt entry above. *)
            Host.in_intr_on t.host ~shard:s ~site:Cpu.Demux cost (fun () ->
                List.iter (handle_ev t) g))
      groups
  end;
  (* Keep the poll timer armed while anything could strand: a lost
     interrupt after this burst would otherwise leave events queued. *)
  if Cab.pending_events t.cab > 0 || t.inflight > 0 then kick_watchdog t

(* ---------- attach ---------- *)

let attach ~host ~ip ~cab ~addr ?(mtu = 32 * 1024) ~mode ?watchdog
    ?(sdma_timeout = Simtime.us 1000.) ?(max_sdma_retries = 3)
    ?rx_pipe_depth () =
  (match rx_pipe_depth with
  | Some d -> Cab.set_rx_pipe_depth cab d
  | None -> ());
  let t =
    {
      host;
      cab;
      mode;
      ifc = None;
      live_outboard = Hashtbl.create 64;
      watchdog;
      sdma_timeout;
      max_sdma_retries;
      inflight = 0;
      poll_timer = Sim.timer (Cab.sim cab) ignore;
      watch_key = 0;
      tx_watch = Hashtbl.create 16;
      steer = None;
      s = zero_stats;
    }
  in
  Sim.set_fn t.poll_timer (fun () -> poll_fire t);
  let single_copy = Stack_mode.is_single_copy mode in
  let ifc =
    Netif.make ~name:(Cab.name cab) ~addr ~mtu ~single_copy
      ~hw_csum_rx:single_copy
      ~copy_out:(fun mb ~off ~len ~dst ~on_done ->
        copy_out t mb ~off ~len ~dst ~on_done)
      ~output:(fun ifc pkt ~next_hop -> output t ifc pkt ~next_hop)
      ()
  in
  t.ifc <- Some ifc;
  (let section = "cab_driver." ^ Cab.name cab in
   let g name f = Obs.gauge ~section ~name (fun () -> float_of_int (f ())) in
   g "tx_packets" (fun () -> t.s.tx_packets);
   g "tx_uio_segments" (fun () -> t.s.tx_uio_segments);
   g "tx_kernel_segments" (fun () -> t.s.tx_kernel_segments);
   g "tx_rewrites" (fun () -> t.s.tx_rewrites);
   g "tx_adaptor_copies" (fun () -> t.s.tx_adaptor_copies);
   g "tx_conversions" (fun () -> t.s.tx_conversions);
   g "tx_drops" (fun () -> t.s.tx_drops);
   g "rx_packets" (fun () -> t.s.rx_packets);
   g "rx_wcab_delivered" (fun () -> t.s.rx_wcab_delivered);
   g "rx_copied_kernel" (fun () -> t.s.rx_copied_kernel);
   g "copyouts" (fun () -> t.s.copyouts);
   g "unaligned_staged" (fun () -> t.s.unaligned_staged);
   g "tx_gather_fallbacks" (fun () -> t.s.tx_gather_fallbacks);
   g "tx_gather_bytes" (fun () -> t.s.tx_gather_bytes);
   g "tx_staged_segments" (fun () -> t.s.tx_staged_segments);
   g "tx_staged_bytes" (fun () -> t.s.tx_staged_bytes);
   g "sdma_timeouts" (fun () -> t.s.sdma_timeouts);
   g "adaptor_resets" (fun () -> t.s.adaptor_resets);
   g "watchdog_polls" (fun () -> t.s.watchdog_polls);
   g "tx_exhausted" (fun () -> t.s.tx_exhausted));
  Cab.set_batch_interrupt_handler cab (fun evs -> interrupt_batch t evs);
  Netif.attach_input ifc (fun m -> Ipv4.input ip ifc m);
  Host.add_iface host ifc;
  t

let add_neighbor t ip ~hippi_addr = Netif.add_neighbor (iface t) ip hippi_addr

let set_steer t classify = t.steer <- Some classify


let pp_stats fmt (s : driver_stats) =
  Format.fprintf fmt
    "tx %d pkts (%d uio segs, %d kernel segs, %d rewrites, %d adaptor \
     copies, %d drops, %d gather fallbacks / %d B, %d staged segs / %d B); \
     rx %d pkts (%d with outboard tails, %d copied to kernel); %d copy-outs \
     (%d staged); recovery: %d sdma timeouts, %d resets, %d polls, %d \
     exhausted"
    s.tx_packets s.tx_uio_segments s.tx_kernel_segments s.tx_rewrites
    s.tx_adaptor_copies s.tx_drops s.tx_gather_fallbacks s.tx_gather_bytes
    s.tx_staged_segments s.tx_staged_bytes s.rx_packets s.rx_wcab_delivered
    s.rx_copied_kernel s.copyouts s.unaligned_staged s.sdma_timeouts
    s.adaptor_resets s.watchdog_polls s.tx_exhausted
