/* Native data-touching kernels for the internet checksum.
 *
 * These are the software image of the CAB's checksum engines (paper
 * §2.1): one pass that moves the data and folds its ones-complement
 * sum as the words stream past.  The OCaml word-at-a-time kernels in
 * inet_csum.ml remain as the small-buffer path and as the oracle the
 * property tests check against; these stubs take over for bulk
 * lengths, where the compiler can keep the sum in vector lanes.
 *
 * Both functions return the sum folded to 16 bits in *native* word
 * order; the OCaml side applies the final byte swap on little-endian
 * hosts (RFC 1071 §2(B): the ones-complement sum is byte-order
 * independent up to that swap).
 *
 * No allocation, no callbacks: safe to declare [@@noalloc], and the
 * Bytes pointers stay valid for the duration of the call.
 */

#include <caml/mlvalues.h>
#include <string.h>
#include <stdint.h>

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
#define NECTAR_BIG_ENDIAN 1
#else
#define NECTAR_BIG_ENDIAN 0
#endif

/* Sum [len] bytes starting at [p] into a native-order 32-bit-lane
   accumulator set; the four independent lanes let the compiler
   vectorise (the loads are memcpy to stay alignment- and
   strict-aliasing-clean).  Returns the 16-bit folded native sum. */
static long fold_sum(const unsigned char *p, long len, uint64_t sum)
{
  uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  long i = 0;
  for (; i + 16 <= len; i += 16) {
    uint32_t w0, w1, w2, w3;
    memcpy(&w0, p + i, 4);
    memcpy(&w1, p + i + 4, 4);
    memcpy(&w2, p + i + 8, 4);
    memcpy(&w3, p + i + 12, 4);
    a0 += w0;
    a1 += w1;
    a2 += w2;
    a3 += w3;
  }
  for (; i + 2 <= len; i += 2) {
    uint16_t w;
    memcpy(&w, p + i, 2);
    sum += w;
  }
  if (i < len) {
    /* Odd trailing byte: the high octet of the final 16-bit word on
       big-endian hosts, the low octet on little-endian ones. */
#if NECTAR_BIG_ENDIAN
    sum += (uint64_t)p[i] << 8;
#else
    sum += p[i];
#endif
  }
  sum += (a0 & 0xffffffffu) + (a0 >> 32);
  sum += (a1 & 0xffffffffu) + (a1 >> 32);
  sum += (a2 & 0xffffffffu) + (a2 >> 32);
  sum += (a3 & 0xffffffffu) + (a3 >> 32);
  sum = (sum & 0xffffffffu) + (sum >> 32);
  sum = (sum & 0xffffffffu) + (sum >> 32);
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  return (long)sum;
}

CAMLprim value nectar_csum_sum_stub(value buf, value voff, value vlen)
{
  const unsigned char *p = (const unsigned char *)Bytes_val(buf) + Long_val(voff);
  return Val_long(fold_sum(p, Long_val(vlen), 0));
}

CAMLprim value nectar_csum_copy_sum_stub(value src, value vsrc_off, value dst,
                                         value vdst_off, value vlen)
{
  const unsigned char *s =
      (const unsigned char *)Bytes_val(src) + Long_val(vsrc_off);
  unsigned char *d = (unsigned char *)Bytes_val(dst) + Long_val(vdst_off);
  long len = Long_val(vlen);
  memcpy(d, s, len);
  return Val_long(fold_sum(s, len, 0));
}
