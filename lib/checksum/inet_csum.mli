(** Internet (ones-complement) checksum arithmetic, RFC 1071 style.

    The unfolded accumulator type [sum] supports the incremental operations
    the paper's offload scheme needs: summing disjoint byte ranges,
    concatenating sums (with odd-length parity handling), subtracting a
    range back out, and folding to the final 16-bit field value.

    Words are interpreted big-endian, as on the wire.  An odd trailing byte
    is padded with a zero low byte. *)

type sum
(** Unfolded ones-complement accumulator. *)

val zero : sum

val of_bytes : ?off:int -> ?len:int -> Bytes.t -> sum
(** Sum of a byte range ([off] defaults to 0, [len] to the rest).
    Word-at-a-time: one up-front bounds check, then 64-bit reads into a
    wide accumulator with a single deferred fold. *)

val reference_of_bytes : ?off:int -> ?len:int -> Bytes.t -> sum
(** Byte-at-a-time reference implementation of {!of_bytes}, retained as
    the oracle for property tests.  Bit-identical to [of_bytes] on every
    input; an order of magnitude slower. *)

val copy_and_sum :
  src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> sum
(** Fused copy + checksum: blits [len] bytes from [src] to [dst] and
    returns their ones-complement sum in the same pass — the software
    image of the CAB DMA engines, which checksum words as they stream
    through (§2.1).  The sum's parity is relative to the range start (the
    first byte is the high byte of the first 16-bit word); combine
    cross-range with {!concat}.  Overlapping ranges within one buffer are
    handled like [Bytes.blit] (memmove semantics). *)

val of_string : string -> sum

val add : sum -> sum -> sum
(** Combine two sums over ranges that both start at even offsets. *)

val concat : first_len:int -> sum -> sum -> sum
(** [concat ~first_len a b] is the sum of range A followed by range B where
    A has [first_len] bytes: when [first_len] is odd the bytes of B are
    byte-swapped before adding, preserving the wire-order interpretation. *)

val sub : sum -> sum -> sum
(** [sub total part] removes [part] from [total] (both even-aligned). *)

val add_u16 : sum -> int -> sum
(** Add one 16-bit big-endian word. *)

val fold : sum -> int
(** Fold to 16 bits (no complement). *)

val finish : sum -> int
(** Fold and complement: the value stored in a TCP/UDP checksum field.
    Never returns 0xFFFF-complement anomalies; plain RFC 793 semantics. *)

val is_valid : sum -> bool
(** True when a sum computed over a packet *including* its checksum field
    folds to 0xFFFF — i.e. the packet verifies. *)

val pseudo_header : src:int32 -> dst:int32 -> proto:int -> len:int -> sum
(** RFC 793 pseudo-header sum for TCP/UDP over IPv4. *)

val equal : sum -> sum -> bool
(** Equality of folded values. *)

val pp : Format.formatter -> sum -> unit
