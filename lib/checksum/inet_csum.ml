type sum = int
(* Invariant: folded to at most 16 bits by [normalize] after every
   operation, so [add] cannot overflow even on 32-bit platforms. *)

let zero = 0

let rec normalize s = if s > 0xffff then normalize ((s land 0xffff) + (s lsr 16)) else s

let swab16 s = ((s land 0xff) lsl 8) lor (s lsr 8)

(* ---- word-at-a-time kernels ----

   The data-touching loops below read 64 bits per iteration through the
   compiler's unchecked load primitives (the same ones the stdlib's checked
   accessors compile to, minus the per-access bounds test); every range is
   validated once, up front.  Words are summed in *native* byte order into a
   wide (63-bit) accumulator and folded once at the end: per RFC 1071 §2(B)
   the ones-complement sum is byte-order independent up to a final byte
   swap, so on little-endian machines the folded result is [swab16]ed once
   instead of swapping every load.  The 63-bit accumulator takes 2^30
   additions of 32-bit halves to overflow — far beyond any buffer here. *)

external unsafe_get_16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Native bulk kernels (csum_kernel.c): the checksum engines' data-touching
   loops, with the sum held in independent 32-bit lanes so the C compiler
   can vectorise.  Both return the sum folded towards 16 bits in native
   order; [finish_native]'s byte swap still applies.  No allocation and no
   callbacks, hence [@@noalloc]. *)
external native_sum : Bytes.t -> int -> int -> int = "nectar_csum_sum_stub"
[@@noalloc]

external native_copy_sum : Bytes.t -> int -> Bytes.t -> int -> int -> int
  = "nectar_csum_copy_sum_stub"
[@@noalloc]

(* Below this length the OCaml word loops win (no external-call setup) and
   the protocol headers stay on the pure-OCaml path. *)
let native_threshold = 64

let big_endian = Sys.big_endian

(* Fold a native-order accumulator [s] (plus the odd trailing byte [last],
   if any) into wire order. *)
let finish_native ~odd ~last s =
  let s = if odd then s + (if big_endian then last lsl 8 else last) else s in
  let s = normalize s in
  if big_endian then s else swab16 s

let check_range ~what buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg (what ^ ": range out of bounds")

let of_bytes ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  check_range ~what:"Inet_csum.of_bytes" buf ~off ~len;
  if len >= native_threshold then begin
    let s = normalize (native_sum buf off len) in
    if big_endian then s else swab16 s
  end
  else begin
  let even_stop = off + len - (len land 1) in
  let s = ref 0 in
  let i = ref off in
  while !i + 8 <= even_stop do
    let v = unsafe_get_64 buf !i in
    s :=
      !s
      + Int64.to_int (Int64.logand v 0xffff_ffffL)
      + Int64.to_int (Int64.shift_right_logical v 32);
    i := !i + 8
  done;
  while !i < even_stop do
    s := !s + unsafe_get_16 buf !i;
    i := !i + 2
  done;
  finish_native ~odd:(len land 1 = 1)
    ~last:(if len land 1 = 1 then Bytes.get_uint8 buf (off + len - 1) else 0)
    !s
  end

(* Retained byte-at-a-time implementation: the oracle the property tests
   hold the word-wise kernels against. *)
let reference_of_bytes ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  check_range ~what:"Inet_csum.reference_of_bytes" buf ~off ~len;
  let s = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    s := !s + (Bytes.get_uint8 buf !i lsl 8) + Bytes.get_uint8 buf (!i + 1);
    i := !i + 2
  done;
  if !i < stop then s := !s + (Bytes.get_uint8 buf !i lsl 8);
  normalize !s

(* Fused copy + checksum: one pass that both blits [len] bytes and returns
   their ones-complement sum — the software image of the CAB's DMA engines,
   which checksum the words as they stream past (§2.1). *)
let copy_and_sum ~src ~src_off ~dst ~dst_off ~len =
  check_range ~what:"Inet_csum.copy_and_sum src" src ~off:src_off ~len;
  check_range ~what:"Inet_csum.copy_and_sum dst" dst ~off:dst_off ~len;
  if src == dst && len > 0 && abs (dst_off - src_off) < len then begin
    (* Overlapping in-buffer move: memmove first, then sum the result. *)
    Bytes.blit src src_off dst dst_off len;
    of_bytes ~off:dst_off ~len dst
  end
  else if len >= native_threshold then begin
    let s = normalize (native_copy_sum src src_off dst dst_off len) in
    if big_endian then s else swab16 s
  end
  else begin
    let even_len = len - (len land 1) in
    let s = ref 0 in
    let i = ref 0 in
    while !i + 8 <= even_len do
      let v = unsafe_get_64 src (src_off + !i) in
      unsafe_set_64 dst (dst_off + !i) v;
      s :=
        !s
        + Int64.to_int (Int64.logand v 0xffff_ffffL)
        + Int64.to_int (Int64.shift_right_logical v 32);
      i := !i + 8
    done;
    while !i < even_len do
      let w = unsafe_get_16 src (src_off + !i) in
      unsafe_set_16 dst (dst_off + !i) w;
      s := !s + w;
      i := !i + 2
    done;
    let odd = len land 1 = 1 in
    let last =
      if odd then begin
        let b = Bytes.get_uint8 src (src_off + len - 1) in
        Bytes.set_uint8 dst (dst_off + len - 1) b;
        b
      end
      else 0
    in
    finish_native ~odd ~last !s
  end

let of_string s = of_bytes (Bytes.unsafe_of_string s)

let add a b = normalize (a + b)

let concat ~first_len a b =
  if first_len land 1 = 0 then add a b else add a (swab16 (normalize b))

let sub total part =
  (* a - b in ones-complement: a + ~b. *)
  normalize (total + (lnot part land 0xffff))

let add_u16 s w = normalize (s + (w land 0xffff))

let fold s = normalize s

let finish s = lnot (fold s) land 0xffff

let is_valid s = fold s = 0xffff

let pseudo_header ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) land 0xffff in
  let lo32 v = Int32.to_int v land 0xffff in
  let s = 0 in
  let s = add_u16 s (hi32 src) in
  let s = add_u16 s (lo32 src) in
  let s = add_u16 s (hi32 dst) in
  let s = add_u16 s (lo32 dst) in
  let s = add_u16 s (proto land 0xff) in
  add_u16 s (len land 0xffff)

let equal a b = fold a = fold b

let pp fmt s = Format.fprintf fmt "0x%04x" (fold s)
