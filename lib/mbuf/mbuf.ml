exception Outboard_data

type notify = {
  mutable dma_pending : int;
  mutable on_drained : unit -> unit;
}

let make_notify () = { dma_pending = 0; on_drained = (fun () -> ()) }

let notify_add n k =
  if k < 0 then invalid_arg "Mbuf.notify_add: negative";
  n.dma_pending <- n.dma_pending + k

let notify_complete n =
  if n.dma_pending <= 0 then invalid_arg "Mbuf.notify_complete: not pending";
  n.dma_pending <- n.dma_pending - 1;
  if n.dma_pending = 0 then n.on_drained ()

let notify_complete_n n k =
  if k < 0 then invalid_arg "Mbuf.notify_complete_n: negative";
  if n.dma_pending > 0 && k > 0 then begin
    n.dma_pending <- max 0 (n.dma_pending - k);
    if n.dma_pending = 0 then n.on_drained ()
  end

type uiowcab_hdr = {
  mutable csum : Csum_offload.tx option;
  notify : notify option;
}

type uio_desc = { uio_space : Addr_space.t; uio_region : Region.t }

type wcab_desc = {
  wcab_id : int;
  wcab_bytes : Bytes.t;
  wcab_base : int;
  mutable wcab_valid : int;
  wcab_body_sum : Inet_csum.sum;
  wcab_free : unit -> unit;
  wcab_refs : int ref;
}

(* Internal and cluster buffers are refcounted cells so that (a) shared
   cluster storage ([copy_range]/[split]) is returned to the free list
   only when the last reference drops, and (b) a driver can hold the
   bytes across an asynchronous DMA capture ([retain_storage]) without
   the pool recycling them underneath the transfer. *)
type cell = { cbuf : Bytes.t; mutable refs : int }

type storage =
  | Internal of cell
  | Cluster of cell
  | Ext_uio of uio_desc
  | Ext_wcab of wcab_desc

type pkthdr = {
  mutable pkt_len : int;
  mutable rcvif : string option;
  mutable rx_csum : Csum_offload.rx option;
  mutable tx_csum : Csum_offload.tx option;
  mutable on_outboard : (wcab_desc -> unit) option;
}

type t = {
  mutable storage : storage;
  mutable off : int;
  mutable len : int;
  mutable next : t option;
  mutable pkthdr : pkthdr option;
  mutable uwhdr : uiowcab_hdr option;
}

let msize = 256
let mclbytes = 2048

(* ---- storage pool ---- *)

(* Free lists of recycled internal/cluster cells.  [get]/[put] keep the
   steady-state datapath allocation-free: a released buffer goes back on
   its free list and the next construction pops it instead of calling
   [Bytes.create].  Only exactly-[msize]/[mclbytes] cells are recycled;
   odd-sized buffers (oversize [prepend]/[pullup] heads) are left to the
   GC. *)
module Pool = struct
  let max_small = 512
  let max_clusters = 1024

  let live = ref 0
  let live_clusters = ref 0
  let hwm_live = ref 0
  let hwm_cl = ref 0

  (* Surfaced through the engine's stats counters so harnesses and the
     macro benchmark can read pool behaviour uniformly. *)
  let allocs = Stats.Counter.create ()
  let hits = Stats.Counter.create ()
  let misses = Stats.Counter.create ()
  let recycled = Stats.Counter.create ()

  (* Free-lists as preallocated stacks: [put]/[get] in steady state touch
     one array slot and a counter — no list cons, nothing for the GC.
     Slots above the stack pointer hold [dummy] so popped cells do not
     linger reachable. *)
  let dummy = { cbuf = Bytes.create 0; refs = 0 }
  let small_stack = Array.make max_small dummy
  let nsmall = ref 0
  let cluster_stack = Array.make max_clusters dummy
  let nclusters = ref 0

  (* ---- per-shard free lists (RSS sharding) ---- *)

  (* Active only while a multi-shard host exists ([set_shard_count n],
     n > 1): each shard owns a private stack and the module-level stacks
     above become the global spill pool — a put that overflows the local
     stack spills globally, a get that misses locally refills from it
     (the group-freelist-per-worker shape).  With one shard the sharded
     branches are never taken, so path and statistics stay byte-identical
     to the unsharded pool. *)
  let shard_small_cap = 128
  let shard_cluster_cap = 256
  let shard_count_ref = ref 1
  let cur = ref 0
  let shard_small = ref ([||] : cell array array)
  let n_shard_small = ref ([||] : int array)
  let shard_cluster = ref ([||] : cell array array)
  let n_shard_cluster = ref ([||] : int array)
  let spills = Stats.Counter.create ()
  let refills = Stats.Counter.create ()

  let sum_counts a = Array.fold_left ( + ) 0 !a
  let free_small_local () = sum_counts n_shard_small
  let free_clusters_local () = sum_counts n_shard_cluster
  let spill_count () = Stats.Counter.get spills
  let refill_count () = Stats.Counter.get refills
  let shard_count () = !shard_count_ref

  let spill_locals () =
    let spill stacks counts push =
      Array.iteri
        (fun s st ->
          for i = 0 to !counts.(s) - 1 do
            push st.(i);
            st.(i) <- dummy
          done;
          !counts.(s) <- 0)
        !stacks
    in
    spill shard_small n_shard_small (fun c ->
        if !nsmall < max_small then begin
          small_stack.(!nsmall) <- c;
          incr nsmall
        end);
    spill shard_cluster n_shard_cluster (fun c ->
        if !nclusters < max_clusters then begin
          cluster_stack.(!nclusters) <- c;
          incr nclusters
        end)

  let set_shard_count n =
    if n < 1 then invalid_arg "Mbuf.Pool.set_shard_count";
    if n <> !shard_count_ref then begin
      spill_locals ();
      if n > 1 then begin
        shard_small := Array.init n (fun _ -> Array.make shard_small_cap dummy);
        n_shard_small := Array.make n 0;
        shard_cluster :=
          Array.init n (fun _ -> Array.make shard_cluster_cap dummy);
        n_shard_cluster := Array.make n 0
      end
      else begin
        shard_small := [||];
        n_shard_small := [||];
        shard_cluster := [||];
        n_shard_cluster := [||]
      end;
      shard_count_ref := n;
      cur := 0
    end

  let set_current i =
    if !shard_count_ref > 1 && i >= 0 && i < !shard_count_ref then cur := i

  let allocated () = !live
  let clusters () = !live_clusters
  let total_allocs () = Stats.Counter.get allocs
  let hit_count () = Stats.Counter.get hits
  let miss_count () = Stats.Counter.get misses
  let recycled_count () = Stats.Counter.get recycled
  let free_small () = !nsmall
  let free_clusters () = !nclusters
  let hwm () = !hwm_live
  let hwm_clusters () = !hwm_cl

  let hit_rate () =
    let h = Stats.Counter.get hits and m = Stats.Counter.get misses in
    if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

  let reset () =
    live := 0;
    live_clusters := 0;
    hwm_live := 0;
    hwm_cl := 0;
    Stats.Counter.reset allocs;
    Stats.Counter.reset hits;
    Stats.Counter.reset misses;
    Stats.Counter.reset recycled;
    Stats.Counter.reset spills;
    Stats.Counter.reset refills

  let trim () =
    let bytes =
      (!nsmall * msize)
      + (!nclusters * mclbytes)
      + (free_small_local () * msize)
      + (free_clusters_local () * mclbytes)
    in
    Array.fill small_stack 0 max_small dummy;
    nsmall := 0;
    Array.fill cluster_stack 0 max_clusters dummy;
    nclusters := 0;
    Array.iter (fun st -> Array.fill st 0 (Array.length st) dummy) !shard_small;
    Array.iter
      (fun st -> Array.fill st 0 (Array.length st) dummy)
      !shard_cluster;
    Array.iteri (fun i _ -> !n_shard_small.(i) <- 0) !n_shard_small;
    Array.iteri (fun i _ -> !n_shard_cluster.(i) <- 0) !n_shard_cluster;
    (bytes + 4095) / 4096

  let note_alloc storage =
    incr live;
    if !live > !hwm_live then hwm_live := !live;
    match storage with
    | Cluster _ ->
        incr live_clusters;
        if !live_clusters > !hwm_cl then hwm_cl := !live_clusters
    | _ -> ()

  let note_free storage =
    decr live;
    match storage with Cluster _ -> decr live_clusters | _ -> ()

  let get_small () =
    if !shard_count_ref > 1 && !n_shard_small.(!cur) > 0 then begin
      let ns = !n_shard_small and st = !shard_small.(!cur) in
      ns.(!cur) <- ns.(!cur) - 1;
      let c = st.(ns.(!cur)) in
      st.(ns.(!cur)) <- dummy;
      Stats.Counter.incr hits;
      c.refs <- 1;
      c
    end
    else if !nsmall > 0 then begin
      decr nsmall;
      let c = small_stack.(!nsmall) in
      small_stack.(!nsmall) <- dummy;
      Stats.Counter.incr hits;
      if !shard_count_ref > 1 then Stats.Counter.incr refills;
      c.refs <- 1;
      c
    end
    else begin
      Stats.Counter.incr misses;
      Stats.Counter.incr allocs;
      { cbuf = Bytes.create msize; refs = 1 }
    end

  let get_cluster () =
    if !shard_count_ref > 1 && !n_shard_cluster.(!cur) > 0 then begin
      let ns = !n_shard_cluster and st = !shard_cluster.(!cur) in
      ns.(!cur) <- ns.(!cur) - 1;
      let c = st.(ns.(!cur)) in
      st.(ns.(!cur)) <- dummy;
      Stats.Counter.incr hits;
      c.refs <- 1;
      c
    end
    else if !nclusters > 0 then begin
      decr nclusters;
      let c = cluster_stack.(!nclusters) in
      cluster_stack.(!nclusters) <- dummy;
      Stats.Counter.incr hits;
      if !shard_count_ref > 1 then Stats.Counter.incr refills;
      c.refs <- 1;
      c
    end
    else begin
      Stats.Counter.incr misses;
      Stats.Counter.incr allocs;
      { cbuf = Bytes.create mclbytes; refs = 1 }
    end

  let put c =
    let n = Bytes.length c.cbuf in
    if !shard_count_ref > 1 then begin
      if n = msize then begin
        let ns = !n_shard_small in
        if ns.(!cur) < shard_small_cap then begin
          !shard_small.(!cur).(ns.(!cur)) <- c;
          ns.(!cur) <- ns.(!cur) + 1;
          Stats.Counter.incr recycled
        end
        else if !nsmall < max_small then begin
          small_stack.(!nsmall) <- c;
          incr nsmall;
          Stats.Counter.incr recycled;
          Stats.Counter.incr spills
        end
      end
      else if n = mclbytes then begin
        let ns = !n_shard_cluster in
        if ns.(!cur) < shard_cluster_cap then begin
          !shard_cluster.(!cur).(ns.(!cur)) <- c;
          ns.(!cur) <- ns.(!cur) + 1;
          Stats.Counter.incr recycled
        end
        else if !nclusters < max_clusters then begin
          cluster_stack.(!nclusters) <- c;
          incr nclusters;
          Stats.Counter.incr recycled;
          Stats.Counter.incr spills
        end
      end
    end
    else if n = msize && !nsmall < max_small then begin
      small_stack.(!nsmall) <- c;
      incr nsmall;
      Stats.Counter.incr recycled
    end
    else if n = mclbytes && !nclusters < max_clusters then begin
      cluster_stack.(!nclusters) <- c;
      incr nclusters;
      Stats.Counter.incr recycled
    end
end

let cell_retain c = c.refs <- c.refs + 1

let cell_release c =
  if c.refs > 0 then begin
    c.refs <- c.refs - 1;
    if c.refs = 0 then Pool.put c
  end

(* Fresh (non-pooled) cell for odd-sized buffers. *)
let cell_of_bytes b = { cbuf = b; refs = 1 }

(* ---- construction ---- *)

let mk ?(pkthdr = false) storage ~off ~len =
  Pool.note_alloc storage;
  {
    storage;
    off;
    len;
    next = None;
    pkthdr =
      (if pkthdr then
         Some
           {
             pkt_len = len;
             rcvif = None;
             rx_csum = None;
             tx_csum = None;
             on_outboard = None;
           }
       else None);
    uwhdr = None;
  }

let get ?pkthdr () = mk ?pkthdr (Internal (Pool.get_small ())) ~off:0 ~len:0

let get_cluster ?pkthdr () =
  mk ?pkthdr (Cluster (Pool.get_cluster ())) ~off:0 ~len:0

let rec chain_len m =
  m.len + match m.next with None -> 0 | Some n -> chain_len n

let fix_pkthdr m =
  match m.pkthdr with
  | None -> ()
  | Some h -> h.pkt_len <- chain_len m

(* Shared chain builder: [fill pos dst seg] writes [seg] bytes of source
   data starting at source offset [pos] into [dst] at offset 0. *)
let build_chain ?(pkthdr = false) ~total fill =
  let rec build pos =
    if pos >= total then None
    else begin
      let seg = min mclbytes (total - pos) in
      let cell =
        if seg <= msize then Pool.get_small () else Pool.get_cluster ()
      in
      let storage = if seg <= msize then Internal cell else Cluster cell in
      fill pos cell.cbuf seg;
      let m = mk storage ~off:0 ~len:seg in
      m.next <- build (pos + seg);
      Some m
    end
  in
  let head =
    match build 0 with
    | Some m -> m
    | None -> mk (Internal (Pool.get_small ())) ~off:0 ~len:0
  in
  if pkthdr then
    head.pkthdr <-
      Some
        {
          pkt_len = total;
          rcvif = None;
          rx_csum = None;
          tx_csum = None;
          on_outboard = None;
        };
  head

let of_bytes ?pkthdr ?(off = 0) ?len src =
  let len = match len with Some l -> l | None -> Bytes.length src - off in
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mbuf.of_bytes: range out of bounds";
  build_chain ?pkthdr ~total:len (fun pos dst seg ->
      Bytes.blit src (off + pos) dst 0 seg)

let of_string ?pkthdr s =
  (* Blit straight from the string into the chain storage: no intermediate
     [Bytes.of_string] copy. *)
  build_chain ?pkthdr ~total:(String.length s) (fun pos dst seg ->
      Bytes.blit_string s pos dst 0 seg)

let wrap_bytes ?pkthdr ?(off = 0) ?len src =
  let len = match len with Some l -> l | None -> Bytes.length src - off in
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Mbuf.wrap_bytes: range out of bounds";
  (* Ownership of [src] transfers to the chain: the cell releases it (and
     may recycle it, if it happens to be exactly cluster-sized) on free. *)
  mk ?pkthdr (Cluster (cell_of_bytes src)) ~off ~len

let alloc ?pkthdr n =
  if n < 0 then invalid_arg "Mbuf.alloc: negative";
  (* Recycled cells hold stale data: [alloc] promises zeroed storage. *)
  build_chain ?pkthdr ~total:n (fun _pos dst seg ->
      Bytes.fill dst 0 seg '\000')

let make_uio ~space ~region ~hdr =
  let desc = { uio_space = space; uio_region = region } in
  let m =
    mk ~pkthdr:true (Ext_uio desc) ~off:0 ~len:(Region.length region)
  in
  m.uwhdr <- Some hdr;
  m

let make_wcab ~desc ~len ~hdr =
  if len < 0 || desc.wcab_base + len > Bytes.length desc.wcab_bytes then
    invalid_arg "Mbuf.make_wcab: length out of range";
  let m = mk ~pkthdr:true (Ext_wcab desc) ~off:0 ~len in
  m.uwhdr <- hdr;
  m

(* ---- inspection ---- *)

type kind = K_internal | K_cluster | K_uio | K_wcab

let kind m =
  match m.storage with
  | Internal _ -> K_internal
  | Cluster _ -> K_cluster
  | Ext_uio _ -> K_uio
  | Ext_wcab _ -> K_wcab

let is_descriptor m =
  match kind m with K_uio | K_wcab -> true | K_internal | K_cluster -> false

let pkt_len m =
  match m.pkthdr with
  | Some h -> h.pkt_len
  | None -> invalid_arg "Mbuf.pkt_len: no packet header"

let has_pkthdr m = m.pkthdr <> None

let set_rcvif m ifname =
  match m.pkthdr with
  | Some h -> h.rcvif <- Some ifname
  | None -> invalid_arg "Mbuf.set_rcvif: no packet header"

let rcvif m = match m.pkthdr with Some h -> h.rcvif | None -> None

let rec iter f m =
  f m;
  match m.next with None -> () | Some n -> iter f n

let rec fold f acc m =
  let acc = f acc m in
  match m.next with None -> acc | Some n -> fold f acc n

let chain_kinds m = List.rev (fold (fun acc m -> kind m :: acc) [] m)

let nth m i =
  let rec go m i = if i = 0 then Some m else
      match m.next with None -> None | Some n -> go n (i - 1)
  in
  if i < 0 then None else go m i

let storage_capacity = function
  | Internal c | Cluster c -> Bytes.length c.cbuf
  | Ext_uio d -> Region.length d.uio_region
  | Ext_wcab d -> Bytes.length d.wcab_bytes - d.wcab_base

let check_invariants m =
  let problems = ref [] in
  let add p = problems := p :: !problems in
  iter
    (fun mb ->
      if mb.len < 0 then add "negative length";
      if mb.off < 0 then add "negative offset";
      if mb.off + mb.len > storage_capacity mb.storage then
        add "data extends past storage";
      if mb != m && mb.pkthdr <> None then add "pkthdr on non-head mbuf")
    m;
  (match m.pkthdr with
  | Some h when h.pkt_len <> chain_len m ->
      add
        (Printf.sprintf "pkthdr len %d <> chain len %d" h.pkt_len
           (chain_len m))
  | Some _ | None -> ());
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

(* ---- data access ---- *)

(* Applies [f buf buf_off seg_len chain_off] for each storage segment
   overlapping [off, off+len).  Raises [Outboard_data] on WCAB storage. *)
let iter_segments m ~off ~len f =
  if off < 0 || len < 0 then invalid_arg "Mbuf: negative range";
  let rec go m pos remaining =
    if remaining > 0 then
      match m with
      | None -> invalid_arg "Mbuf: range past end of chain"
      | Some mb ->
          let skip = max 0 (off - pos) in
          if skip >= mb.len then go mb.next (pos + mb.len) remaining
          else begin
            let seg = min (mb.len - skip) remaining in
            (match mb.storage with
            | Internal c | Cluster c ->
                f c.cbuf (mb.off + skip) seg (off + len - remaining)
            | Ext_uio d ->
                (* Reading through to user memory: allowed (it is host
                   memory); the caller charges the cost.  Zero-copy: hand
                   out the region's backing store directly rather than
                   materializing a [Bytes.sub] of it per segment. *)
                let ubuf, upos = Region.backing d.uio_region in
                f ubuf (upos + mb.off + skip) seg (off + len - remaining)
            | Ext_wcab _ -> raise Outboard_data);
            go mb.next (pos + mb.len) (remaining - seg)
          end
  in
  go (Some m) 0 len

let copy_into m ~off ~len dst ~dst_off =
  if dst_off + len > Bytes.length dst then
    invalid_arg "Mbuf.copy_into: destination too small";
  iter_segments m ~off ~len (fun buf boff seg chain_off ->
      Bytes.blit buf boff dst (dst_off + (chain_off - off)) seg)

let copy_into_csum m ~off ~len dst ~dst_off =
  if dst_off + len > Bytes.length dst then
    invalid_arg "Mbuf.copy_into_csum: destination too small";
  let sum = ref Inet_csum.zero in
  let consumed = ref 0 in
  iter_segments m ~off ~len (fun buf boff seg chain_off ->
      let part =
        Inet_csum.copy_and_sum ~src:buf ~src_off:boff ~dst
          ~dst_off:(dst_off + (chain_off - off)) ~len:seg
      in
      sum := Inet_csum.concat ~first_len:!consumed !sum part;
      consumed := !consumed + seg);
  !sum

let view m ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Mbuf.view: negative range";
  let rec go m pos =
    match m with
    | None -> None
    | Some mb ->
        let skip = off - pos in
        if skip >= mb.len then go mb.next (pos + mb.len)
        else if len > mb.len - skip then None
        else (
          match mb.storage with
          | Internal c | Cluster c -> Some (c.cbuf, mb.off + skip)
          | Ext_uio d ->
              let ubuf, upos = Region.backing d.uio_region in
              Some (ubuf, upos + mb.off + skip)
          | Ext_wcab _ -> None)
  in
  go (Some m) 0

let copy_into_raw m ~off ~len dst ~dst_off =
  if dst_off + len > Bytes.length dst then
    invalid_arg "Mbuf.copy_into_raw: destination too small";
  let rec go m pos remaining =
    if remaining > 0 then
      match m with
      | None -> invalid_arg "Mbuf.copy_into_raw: range past end of chain"
      | Some mb ->
          let skip = max 0 (off - pos) in
          if skip >= mb.len then go mb.next (pos + mb.len) remaining
          else begin
            let seg = min (mb.len - skip) remaining in
            let chain_off = off + len - remaining in
            (match mb.storage with
            | Internal c | Cluster c ->
                Bytes.blit c.cbuf (mb.off + skip) dst
                  (dst_off + (chain_off - off))
                  seg
            | Ext_uio d ->
                Region.blit_to_bytes d.uio_region ~src_off:(mb.off + skip)
                  dst ~dst_off:(dst_off + (chain_off - off)) ~len:seg
            | Ext_wcab d ->
                Bytes.blit d.wcab_bytes
                  (d.wcab_base + mb.off + skip)
                  dst (dst_off + (chain_off - off)) seg);
            go mb.next (pos + mb.len) (remaining - seg)
          end
  in
  go (Some m) 0 len

let copy_from m ~off ~len src ~src_off =
  if src_off + len > Bytes.length src then
    invalid_arg "Mbuf.copy_from: source too small";
  (* A write needs the real underlying buffer, so handle UIO specially. *)
  let rec go m pos remaining =
    if remaining > 0 then
      match m with
      | None -> invalid_arg "Mbuf.copy_from: range past end of chain"
      | Some mb ->
          let skip = max 0 (off - pos) in
          if skip >= mb.len then go mb.next (pos + mb.len) remaining
          else begin
            let seg = min (mb.len - skip) remaining in
            let chain_off = off + len - remaining in
            (match mb.storage with
            | Internal c | Cluster c ->
                Bytes.blit src
                  (src_off + (chain_off - off))
                  c.cbuf (mb.off + skip) seg
            | Ext_uio d ->
                Region.blit_from_bytes src
                  ~src_off:(src_off + (chain_off - off))
                  d.uio_region ~dst_off:(mb.off + skip) ~len:seg
            | Ext_wcab _ -> raise Outboard_data);
            go mb.next (pos + mb.len) (remaining - seg)
          end
  in
  go (Some m) 0 len

let to_string m =
  let n = chain_len m in
  let buf = Bytes.create n in
  copy_into m ~off:0 ~len:n buf ~dst_off:0;
  Bytes.unsafe_to_string buf

let checksum m ~off ~len =
  let sum = ref Inet_csum.zero in
  let consumed = ref 0 in
  iter_segments m ~off ~len (fun buf boff seg _chain_off ->
      let part = Inet_csum.of_bytes ~off:boff ~len:seg buf in
      sum := Inet_csum.concat ~first_len:!consumed !sum part;
      consumed := !consumed + seg);
  !sum

(* ---- chain surgery ---- *)

let rec last m = match m.next with None -> m | Some n -> last n

let append a b =
  b.pkthdr <- None;
  (last a).next <- Some b;
  fix_pkthdr a

let host_writable m =
  match m.storage with
  | Internal _ | Cluster _ -> true
  | Ext_uio _ | Ext_wcab _ -> false

(* Leading space may only be claimed in storage that is certainly private.
   Clusters are shared by [copy_range]/[split] without reference counting,
   so writing into their "free" leading bytes would scribble over live
   data of another chain (e.g. the previous TCP segment still queued for
   retransmit). *)
let private_head m =
  match m.storage with
  | Internal _ -> true
  | Cluster _ | Ext_uio _ | Ext_wcab _ -> false

let prepend m n =
  if n < 0 then invalid_arg "Mbuf.prepend: negative";
  if private_head m && m.off >= n && m.uwhdr = None then begin
    m.off <- m.off - n;
    m.len <- m.len + n;
    fix_pkthdr m;
    m
  end
  else begin
    let head =
      if n <= msize then mk (Internal (Pool.get_small ())) ~off:0 ~len:n
      else if n <= mclbytes then
        mk (Cluster (Pool.get_cluster ())) ~off:0 ~len:n
      else mk (Cluster (cell_of_bytes (Bytes.create n))) ~off:0 ~len:n
    in
    (* Leave the data at the tail of the buffer so further prepends can
       reuse the leading space. *)
    (match head.storage with
    | Internal c | Cluster c -> head.off <- Bytes.length c.cbuf - n
    | Ext_uio _ | Ext_wcab _ -> assert false);
    head.next <- Some m;
    head.pkthdr <- m.pkthdr;
    m.pkthdr <- None;
    fix_pkthdr head;
    head
  end

let share_storage mb ~skip ~seg =
  match mb.storage with
  | Internal c ->
      let nc = Pool.get_small () in
      Bytes.blit c.cbuf (mb.off + skip) nc.cbuf 0 seg;
      mk (Internal nc) ~off:0 ~len:seg
  | Cluster c ->
      cell_retain c;
      mk (Cluster c) ~off:(mb.off + skip) ~len:seg
  | Ext_uio d ->
      let copy = mk (Ext_uio d) ~off:(mb.off + skip) ~len:seg in
      copy.uwhdr <- mb.uwhdr;
      copy
  | Ext_wcab d ->
      incr d.wcab_refs;
      let copy = mk (Ext_wcab d) ~off:(mb.off + skip) ~len:seg in
      copy.uwhdr <- mb.uwhdr;
      copy

let copy_range m ~off ~len =
  let total = chain_len m in
  let len = if len = -1 then total - off else len in
  if off < 0 || len < 0 || off + len > total then
    invalid_arg
      (Printf.sprintf "Mbuf.copy_range: off=%d len=%d of chain %d" off len
         total);
  (* Link copies in place as they are made (head/tail pointers) instead of
     accumulating a list and reversing it. *)
  let head = ref None and tail = ref None in
  if len > 0 then begin
    let rec go m pos remaining =
      if remaining > 0 then
        match m with
        | None -> assert false
        | Some mb ->
            let skip = max 0 (off - pos) in
            if skip >= mb.len then go mb.next (pos + mb.len) remaining
            else begin
              let seg = min (mb.len - skip) remaining in
              let copy = share_storage mb ~skip ~seg in
              (match !tail with
              | None -> head := Some copy
              | Some t -> t.next <- Some copy);
              tail := Some copy;
              go mb.next (pos + mb.len) (remaining - seg)
            end
    in
    go (Some m) 0 len
  end;
  let head =
    match !head with
    | None -> mk (Internal (Pool.get_small ())) ~off:0 ~len:0
    | Some h -> h
  in
  head.pkthdr <-
    Some
      {
        pkt_len = len;
        rcvif = rcvif m;
        rx_csum = None;
        tx_csum = None;
        on_outboard = None;
      };
  head

let release_storage mb =
  (match mb.storage with
  | Ext_wcab d ->
      decr d.wcab_refs;
      if !(d.wcab_refs) = 0 then d.wcab_free ()
  | Internal c | Cluster c -> cell_release c
  | Ext_uio _ -> ());
  Pool.note_free mb.storage

(* Pin the head mbuf's host storage across an asynchronous transfer (the
   driver's zero-copy SDMA capture).  The returned closure releases the
   pin; until it runs, [free]ing the chain will not recycle the bytes. *)
let retain_storage m =
  match m.storage with
  | Internal c | Cluster c ->
      cell_retain c;
      fun () -> cell_release c
  | Ext_uio _ | Ext_wcab _ -> fun () -> ()

let adj_head m n =
  if n < 0 then invalid_arg "Mbuf.adj_head: negative";
  if n > chain_len m then invalid_arg "Mbuf.adj_head: longer than chain";
  let remaining = ref n in
  (* Trim the head mbuf in place, then unlink emptied followers. *)
  let rec trim mb =
    if !remaining > 0 then begin
      let take = min mb.len !remaining in
      mb.off <- mb.off + take;
      mb.len <- mb.len - take;
      remaining := !remaining - take;
      if !remaining > 0 then
        match mb.next with
        | Some nx ->
            trim nx;
            (* Unlink [nx] if it was fully consumed. *)
            if nx.len = 0 then begin
              mb.next <- nx.next;
              nx.next <- None;
              release_storage nx
            end
        | None -> assert false
    end
  in
  trim m;
  fix_pkthdr m

let adj_tail m n =
  if n < 0 then invalid_arg "Mbuf.adj_tail: negative";
  let total = chain_len m in
  if n > total then invalid_arg "Mbuf.adj_tail: longer than chain";
  let keep = total - n in
  let rec go mb pos =
    let end_pos = pos + mb.len in
    if end_pos <= keep then
      match mb.next with None -> () | Some nx -> go nx end_pos
    else begin
      mb.len <- max 0 (keep - pos);
      (* Free everything after this mbuf. *)
      let rec free_rest = function
        | None -> ()
        | Some nx ->
            let tail = nx.next in
            nx.next <- None;
            release_storage nx;
            free_rest tail
      in
      free_rest mb.next;
      mb.next <- None
    end
  in
  go m 0;
  fix_pkthdr m

let pullup m n =
  if n > chain_len m then invalid_arg "Mbuf.pullup: chain too short";
  if n <= m.len && host_writable m then m
  else begin
    let cell =
      if n <= msize then Pool.get_small ()
      else if n <= mclbytes then Pool.get_cluster ()
      else cell_of_bytes (Bytes.create n)
    in
    copy_into m ~off:0 ~len:n cell.cbuf ~dst_off:0;
    let head =
      if n <= msize then mk (Internal cell) ~off:0 ~len:n
      else mk (Cluster cell) ~off:0 ~len:n
    in
    head.pkthdr <- m.pkthdr;
    m.pkthdr <- None;
    adj_head m n;
    (* Drop a fully emptied old head from the chain. *)
    if m.len = 0 then begin
      head.next <- m.next;
      m.next <- None;
      release_storage m
    end
    else head.next <- Some m;
    fix_pkthdr head;
    head
  end

let split m n =
  let total = chain_len m in
  if n < 0 || n > total then invalid_arg "Mbuf.split: out of range";
  let back = copy_range m ~off:n ~len:(total - n) in
  adj_tail m (total - n);
  if m.pkthdr = None then
    m.pkthdr <-
      Some
        {
          pkt_len = n;
          rcvif = None;
          rx_csum = None;
          tx_csum = None;
          on_outboard = None;
        };
  fix_pkthdr m;
  (m, back)

let free m =
  let rec go = function
    | None -> ()
    | Some mb ->
        let nx = mb.next in
        mb.next <- None;
        release_storage mb;
        go nx
  in
  go (Some m)

let pp fmt m =
  let kind_char mb =
    match kind mb with
    | K_internal -> 'i'
    | K_cluster -> 'c'
    | K_uio -> 'U'
    | K_wcab -> 'W'
  in
  Format.fprintf fmt "mbuf[";
  iter (fun mb -> Format.fprintf fmt "%c%d " (kind_char mb) mb.len) m;
  Format.fprintf fmt "| total=%d%s]" (chain_len m)
    (match m.pkthdr with
    | Some h -> Printf.sprintf " pkt=%d" h.pkt_len
    | None -> "")

(* Publish pool statistics in the central registry (module init: the pool
   is a process-global, so plain registration is enough). *)
let () =
  let s = "mbuf_pool" in
  let fi f () = float_of_int (f ()) in
  Obs.gauge ~section:s ~name:"live" (fi Pool.allocated);
  Obs.gauge ~section:s ~name:"live_clusters" (fi Pool.clusters);
  Obs.gauge ~section:s ~name:"hwm" (fi Pool.hwm);
  Obs.gauge ~section:s ~name:"hwm_clusters" (fi Pool.hwm_clusters);
  Obs.gauge ~section:s ~name:"allocs" (fi Pool.total_allocs);
  Obs.gauge ~section:s ~name:"hits" (fi Pool.hit_count);
  Obs.gauge ~section:s ~name:"misses" (fi Pool.miss_count);
  Obs.gauge ~section:s ~name:"recycled" (fi Pool.recycled_count);
  Obs.gauge ~section:s ~name:"hit_rate" Pool.hit_rate;
  Obs.gauge ~section:s ~name:"free_small" (fi Pool.free_small);
  Obs.gauge ~section:s ~name:"free_clusters" (fi Pool.free_clusters);
  Obs.gauge ~section:s ~name:"free_small_local" (fi Pool.free_small_local);
  Obs.gauge ~section:s ~name:"free_clusters_local"
    (fi Pool.free_clusters_local);
  Obs.gauge ~section:s ~name:"spills" (fi Pool.spill_count);
  Obs.gauge ~section:s ~name:"refills" (fi Pool.refill_count)
