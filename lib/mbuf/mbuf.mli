(** BSD-style mbufs, extended with the paper's descriptor types.

    Data travels through the stack in three formats (§4.2):

    - regular mbufs: small internal buffers and 2 KByte clusters holding
      real bytes in kernel memory;
    - [M_UIO] mbufs: external mbufs *describing* data still in an
      application's address space (transmit before the outboard copy,
      receive for the read target);
    - [M_WCAB] mbufs: external mbufs describing data resident in CAB
      network memory (retransmit buffers on transmit, large packets on
      receive).

    UIO and WCAB mbufs carry a [uiowcab_hdr] with the checksum-offload
    record and a notify block used to resynchronize the socket layer with
    asynchronous DMA (§4.4.2).

    Host protocol code must never read payload bytes out of a WCAB mbuf —
    the data is outboard.  The accessors that touch data ([copy_into],
    [checksum], …) raise [Outboard_data] if the range covers a WCAB mbuf;
    only the CAB driver's copy-in/copy-out routines (which charge DMA
    costs) may move that data. *)

exception Outboard_data
(** Raised when host code attempts to touch data that lives in network
    memory. *)

(** Notify block connecting driver DMA completions back to the socket
    layer.  [dma_pending] is the paper's "UIO counter". *)
type notify = {
  mutable dma_pending : int;
  mutable on_drained : unit -> unit;  (** called when the count reaches 0 *)
}

val make_notify : unit -> notify
val notify_add : notify -> int -> unit
val notify_complete : notify -> unit
(** Decrements [dma_pending]; runs [on_drained] when it reaches zero. *)

val notify_complete_n : notify -> int -> unit
(** Decrements by [n], clamped at zero (a retransmit may complete a range
    twice); runs [on_drained] on the transition to zero. *)

(** The [uiowCABhdr] of §4.2. *)
type uiowcab_hdr = {
  mutable csum : Csum_offload.tx option;
  notify : notify option;
}

(** Descriptor for data in a user address space. *)
type uio_desc = { uio_space : Addr_space.t; uio_region : Region.t }

(** Descriptor for data in CAB network memory.  [wcab_bytes] is simulator
    plumbing shared with the adaptor model — host-side stack code must go
    through the driver to move it. *)
type wcab_desc = {
  wcab_id : int;
  wcab_bytes : Bytes.t;
  wcab_base : int;  (** offset of this mbuf's first byte in [wcab_bytes] *)
  mutable wcab_valid : int;  (** §4.2: how much outboard data is valid *)
  wcab_body_sum : Inet_csum.sum;  (** engine sum saved with the packet *)
  wcab_free : unit -> unit;
  wcab_refs : int ref;
      (** share count across mbufs (retransmit copies); [wcab_free] runs
          when it drops to zero *)
}

(** Refcounted host buffer: cluster storage is shared by
    [copy_range]/[split], and a driver may pin it across an asynchronous
    DMA ([retain_storage]); the buffer returns to the free list only when
    the last reference drops. *)
type cell = { cbuf : Bytes.t; mutable refs : int }

type storage =
  | Internal of cell
  | Cluster of cell
  | Ext_uio of uio_desc
  | Ext_wcab of wcab_desc

type pkthdr = {
  mutable pkt_len : int;
  mutable rcvif : string option;
  mutable rx_csum : Csum_offload.rx option;
      (** receive-side hardware checksum info travelling with the packet *)
  mutable tx_csum : Csum_offload.tx option;
      (** transmit-side offload record, field offsets relative to the
          transport segment; single-copy drivers translate to packet
          offsets and program the checksum engine with it *)
  mutable on_outboard : (wcab_desc -> unit) option;
      (** transmit side: called by a single-copy driver once the packet's
          payload has been copied into network memory, so the transport
          layer can swap its retransmit buffers to M_WCAB (§4.2) *)
}

type t = {
  mutable storage : storage;
  mutable off : int;  (** first valid byte within the storage *)
  mutable len : int;  (** valid bytes *)
  mutable next : t option;
  mutable pkthdr : pkthdr option;
  mutable uwhdr : uiowcab_hdr option;
}

val msize : int
(** Internal-buffer capacity (256 bytes, minus nothing — header overhead is
    modelled separately). *)

val mclbytes : int
(** Cluster size (2048). *)

(** {1 Construction} *)

val get : ?pkthdr:bool -> unit -> t
(** A fresh empty internal mbuf. *)

val get_cluster : ?pkthdr:bool -> unit -> t

val of_string : ?pkthdr:bool -> string -> t
(** Chain of internal/cluster mbufs holding a copy of the string (blitted
    directly into chain storage, no intermediate buffer). *)

val of_bytes : ?pkthdr:bool -> ?off:int -> ?len:int -> Bytes.t -> t
(** Chain holding a copy of [src[off, off+len)] (default: all of [src]). *)

val wrap_bytes : ?pkthdr:bool -> ?off:int -> ?len:int -> Bytes.t -> t
(** Zero-copy: wrap existing storage as a single-segment chain instead of
    copying it into pooled cells. Ownership of the buffer transfers to the
    chain — the caller must not reuse it after [free]. *)

val alloc : ?pkthdr:bool -> int -> t
(** Zero-filled chain of the given total length. *)

val make_uio :
  space:Addr_space.t -> region:Region.t -> hdr:uiowcab_hdr -> t
(** A packet-headed M_UIO mbuf describing [region]. *)

val make_wcab : desc:wcab_desc -> len:int -> hdr:uiowcab_hdr option -> t
(** A packet-headed M_WCAB mbuf of [len] payload bytes. *)

(** {1 Inspection} *)

type kind = K_internal | K_cluster | K_uio | K_wcab

val kind : t -> kind
val is_descriptor : t -> bool
(** True for UIO and WCAB mbufs. *)

val chain_len : t -> int
(** Sum of [len] over the chain. *)

val pkt_len : t -> int
(** From the packet header; raises [Invalid_argument] if absent. *)

val has_pkthdr : t -> bool
val set_rcvif : t -> string -> unit
val rcvif : t -> string option

val chain_kinds : t -> kind list
val iter : (t -> unit) -> t -> unit
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val nth : t -> int -> t option
(** [nth m i] is the i-th mbuf of the chain. *)

val check_invariants : t -> (unit, string) result
(** pkthdr length equals chain length; offsets/lengths in range. *)

(** {1 Data access (host-readable storage only)} *)

val copy_into : t -> off:int -> len:int -> Bytes.t -> dst_off:int -> unit
(** Copies chain bytes [off, off+len) into a host buffer.  Raises
    [Outboard_data] when the range touches a WCAB mbuf; reads through to
    user memory for UIO mbufs (the host *can* read user data, it is just
    expensive — the caller accounts for the cost). *)

val copy_into_csum : t -> off:int -> len:int -> Bytes.t -> dst_off:int -> Inet_csum.sum
(** Like [copy_into], fused with the ones-complement sum of the bytes
    copied (see {!Inet_csum.copy_and_sum}): one pass over the data instead
    of a copy followed by a checksum pass.  Odd-length parity across mbuf
    boundaries is handled as in {!checksum}. *)

val view : t -> off:int -> len:int -> (Bytes.t * int) option
(** [view m ~off ~len] is [Some (buf, pos)] when chain bytes
    [off, off+len) are contiguous in host-readable storage, such that byte
    [off + i] is [Bytes.get buf (pos + i)].  Zero-copy; [None] when the
    range spans a segment boundary or lives outboard.  The buffer is the
    real backing store — callers must not write through it and must stay
    within the window. *)

val copy_from : t -> off:int -> len:int -> Bytes.t -> src_off:int -> unit
(** Writes into chain storage.  Raises [Outboard_data] on WCAB ranges. *)

val copy_into_raw : t -> off:int -> len:int -> Bytes.t -> dst_off:int -> unit
(** Like [copy_into] but reads through M_WCAB storage.  Simulator plumbing
    for drivers and recovery paths (e.g. copying outboard data back after
    a route change) that model the transfer cost themselves — ordinary
    protocol code must use [copy_into]. *)

val to_string : t -> string
(** The whole chain's data ([copy_into] of everything). *)

val checksum : t -> off:int -> len:int -> Inet_csum.sum
(** Ones-complement sum over a chain range, with correct odd-length
    parity across mbuf boundaries.  Raises [Outboard_data] on WCAB. *)

(** {1 Chain surgery} *)

val append : t -> t -> unit
(** [append a b] links chain [b] after the last mbuf of [a] and updates
    [a]'s pkthdr.  [b]'s pkthdr, if any, is dropped. *)

val prepend : t -> int -> t
(** [prepend m n] returns a chain with [n] bytes of fresh header space in
    front of [m] (BSD's M_PREPEND): uses leading space in [m]'s first
    buffer when available and host-readable, else links a new internal
    mbuf.  The returned head carries [m]'s pkthdr (length updated). *)

val copy_range : t -> off:int -> len:int -> t
(** BSD m_copym with share semantics: descriptor and cluster storage is
    shared, internal buffers are copied.  The result has a fresh pkthdr.
    [len = -1] means "to the end of the chain". *)

val adj_head : t -> int -> unit
(** Trim [n] bytes from the front of the chain (m_adj).  Keeps empty
    leading mbufs out of the chain where possible. *)

val adj_tail : t -> int -> unit

val pullup : t -> int -> t
(** Ensure the first [n] bytes are contiguous and host-readable in the
    head mbuf; returns the (possibly new) head.  Raises [Outboard_data] if
    those bytes live outboard, [Invalid_argument] if the chain is shorter
    than [n]. *)

val split : t -> int -> t * t
(** [split m n] divides the chain at byte [n]: descriptor/cluster storage
    is shared, not copied.  Both halves get packet headers. *)

val free : t -> unit
(** Releases the whole chain: runs WCAB release hooks, returns internal
    and cluster buffers to the storage pool's free lists. *)

val retain_storage : t -> unit -> unit
(** Pin the head mbuf's host storage across an asynchronous transfer
    (e.g. a driver's zero-copy DMA capture).  Returns the release
    closure; until it runs, freeing the chain will not recycle the
    bytes.  No-op closure for descriptor storage. *)

(** {1 Storage pool}

    Free lists of recycled [Internal]/[Cluster] buffers keep the
    steady-state datapath allocation-free.  Only exactly-[msize] /
    [mclbytes] buffers are recycled; odd sizes are left to the GC. *)

module Pool : sig
  val allocated : unit -> int
  (** Currently live mbufs (all kinds). *)

  val clusters : unit -> int
  (** Currently live cluster mbufs. *)

  val total_allocs : unit -> int
  (** Fresh storage allocations ([Bytes.create]), i.e. pool misses —
      flat across a steady-state workload once the pool is warm. *)

  val hit_count : unit -> int
  val miss_count : unit -> int
  val recycled_count : unit -> int
  (** Buffers returned to a free list (drops of odd sizes excluded). *)

  val hit_rate : unit -> float
  (** hits / (hits + misses), 0 when no requests yet. *)

  val free_small : unit -> int
  val free_clusters : unit -> int
  (** Current global (spill) free-list depths. *)

  val set_shard_count : int -> unit
  (** Switch the pool between unsharded ([1], the default) and sharded
      ([n > 1]) mode.  In sharded mode each shard owns a private free
      list; the global lists become the spill pool.  Reconfiguring
      spills all local free lists back into the global pool first.
      Residency is timing-neutral for the simulation — only hit/spill
      statistics depend on it. *)

  val set_current : int -> unit
  (** Select the shard whose free list subsequent [get]/[put] traffic
      uses.  No-op in unsharded mode or out of range. *)

  val shard_count : unit -> int

  val free_small_local : unit -> int
  val free_clusters_local : unit -> int
  (** Buffers parked across all per-shard free lists. *)

  val spill_count : unit -> int
  (** Puts that overflowed a shard's local list into the global pool. *)

  val refill_count : unit -> int
  (** Gets that missed the local list and hit the global pool. *)

  val hwm : unit -> int
  val hwm_clusters : unit -> int
  (** High-water marks of live mbufs / live clusters. *)

  val trim : unit -> int
  (** Drop both free lists; returns the number of 4K pages released. *)

  val reset : unit -> unit
  (** Zero the gauges and counters.  Keeps the free lists (so tests can
      reset statistics without discarding a warm pool). *)
end

val pp : Format.formatter -> t -> unit
(** One-line chain summary: kinds and lengths. *)
