type plan =
  | Off
  | Probability of float
  | Once_at of int
  | Every_n of int

type point = {
  mutable p : plan;
  rng : Rng.t;
  mutable consults : int;
  mutable fires : int;
}

(* The disarmed fast path is one load + one branch on this flag; nothing
   below it runs while a benchmark is measuring. *)
let armed_flag = ref false
let seed0 = ref 0
let points : (string, point) Hashtbl.t = Hashtbl.create 16

let total_consults = Obs.counter ~section:"fault" ~name:"consults"
let total_fires = Obs.counter ~section:"fault" ~name:"fires"

let armed () = !armed_flag

let arm ~seed =
  Hashtbl.reset points;
  Obs.Counter.reset total_consults;
  Obs.Counter.reset total_fires;
  seed0 := seed;
  armed_flag := true

let disarm () = armed_flag := false

(* Per-site streams are derived from the arm seed and the site name, not
   from consult order: two runs that consult sites in different orders
   still give each site the same fault sequence. *)
let point_of site =
  match Hashtbl.find_opt points site with
  | Some pt -> pt
  | None ->
      let pt =
        {
          p = Off;
          rng = Rng.create ~seed:(!seed0 lxor Hashtbl.hash site);
          consults = 0;
          fires = 0;
        }
      in
      Hashtbl.replace points site pt;
      pt

let plan ~site p =
  if not !armed_flag then
    invalid_arg "Fault.plan: plane is disarmed (call Fault.arm first)";
  (match p with
  | Probability pr when pr < 0.0 || pr > 1.0 ->
      invalid_arg "Fault.plan: probability out of [0, 1]"
  | Once_at n when n <= 0 -> invalid_arg "Fault.plan: once_at must be >= 1"
  | Every_n n when n <= 0 -> invalid_arg "Fault.plan: every_n must be >= 1"
  | _ -> ());
  (point_of site).p <- p

let consult site =
  let pt = point_of site in
  pt.consults <- pt.consults + 1;
  Obs.Counter.incr total_consults;
  let hit =
    match pt.p with
    | Off -> false
    | Probability p -> Rng.float pt.rng 1.0 < p
    | Once_at n -> pt.consults = n
    | Every_n n -> pt.consults mod n = 0
  in
  if hit then begin
    pt.fires <- pt.fires + 1;
    Obs.Counter.incr total_fires
  end;
  (pt, hit)

let fire site = !armed_flag && snd (consult site)

let fire_at site ~bound =
  if not !armed_flag then None
  else
    match consult site with
    | pt, true when bound > 0 -> Some (Rng.int pt.rng bound)
    | _, _ -> None

let consults ~site =
  match Hashtbl.find_opt points site with Some pt -> pt.consults | None -> 0

let fires ~site =
  match Hashtbl.find_opt points site with Some pt -> pt.fires | None -> 0

let sites () =
  Hashtbl.fold (fun site pt acc -> (site, pt.p, pt.consults, pt.fires) :: acc)
    points []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let plan_json = function
  | Off -> {|"off"|}
  | Probability p -> Printf.sprintf {|{"probability": %g}|} p
  | Once_at n -> Printf.sprintf {|{"once_at": %d}|} n
  | Every_n n -> Printf.sprintf {|{"every_n": %d}|} n

let () =
  Obs.table ~section:"fault" ~name:"sites" (fun () ->
      let b = Buffer.create 128 in
      Buffer.add_char b '[';
      List.iteri
        (fun i (site, p, c, f) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf
               {|{"site": %S, "plan": %s, "consults": %d, "fires": %d}|} site
               (plan_json p) c f))
        (sites ());
      Buffer.add_char b ']';
      Buffer.contents b)
