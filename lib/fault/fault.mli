(** Deterministic, seed-driven fault injection.

    A process-global registry of string-keyed injection {e sites}.  Code
    on the datapath consults its site with {!fire} at the moment the
    modeled hardware could fail (an outboard allocation, an SDMA post, an
    interrupt line, a byte on the wire); the plan installed for that site
    decides whether the fault happens.

    Everything is deterministic: {!arm} seeds the plane, each site draws
    from its own SplitMix64 stream derived from [seed lxor hash site]
    (so the stream a site sees does not depend on the order sites are
    first consulted), and a re-{!arm} with the same seed replays the same
    faults against the same consult sequence.

    Cost discipline: when the plane is disarmed — the default, and the
    state every benchmark runs in — {!fire} is one load and one branch.
    Sites, counters and plans only exist while armed.

    Stats are published in the {!Obs} registry under section ["fault"]:
    total consults/fires as counters, and a ["sites"] table with the
    per-site plan, consult count and fire count. *)

type plan =
  | Off
  | Probability of float  (** fire each consult with probability [p] *)
  | Once_at of int  (** fire exactly once, on the [n]-th consult (1-based) *)
  | Every_n of int  (** fire on every [n]-th consult *)

val arm : seed:int -> unit
(** Enable injection.  Clears every site and plan from a previous arm,
    so a fresh [arm] + the same [plan] calls is a full replay. *)

val disarm : unit -> unit
(** Disable injection ({!fire} returns [false] unconditionally).  Site
    counters survive until the next {!arm}, so post-run reporting can
    still read {!fires}/{!consults}. *)

val armed : unit -> bool

val plan : site:string -> plan -> unit
(** Install a plan for [site].  Call after {!arm}; installing a plan on a
    disarmed plane raises [Invalid_argument] (the site streams are seeded
    by [arm]). *)

val fire : string -> bool
(** [fire site] — consult the site: [true] when the fault fires now.
    On a disarmed plane: [false], without creating the site. *)

val fire_at : string -> bound:int -> int option
(** [fire_at site ~bound] — like {!fire}, but a firing fault also draws a
    uniform position in [\[0, bound)] (e.g. the byte of a frame to
    corrupt).  [None] when the fault does not fire or [bound <= 0]. *)

val consults : site:string -> int
(** Consults since the last {!arm} (0 for never-consulted sites). *)

val fires : site:string -> int
(** Fires since the last {!arm} (0 for never-fired sites). *)

val sites : unit -> (string * plan * int * int) list
(** [(site, plan, consults, fires)] for every site seen since {!arm},
    sorted by site name. *)
